// Package quicksi implements QuickSI (Shang, Zhang, Lin, Yu, PVLDB 2008),
// abbreviated QSI in the paper's figures. QuickSI precomputes label and
// edge-label-pair frequencies on the stored graph ("average inner support",
// §3.1.2), uses them to weight the query's edges, builds a rooted minimum
// spanning tree with Prim's algorithm, and matches query vertices in MST
// insertion order.
//
// Ties in root selection and in Prim's edge selection are broken by node ID,
// which is why isomorphic rewritings of the same query can behave very
// differently — QuickSI shows the widest (max/min) variance among the NFV
// methods in the paper's §5 study.
package quicksi

import (
	"context"

	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/match"
)

// Matcher is a QuickSI instance bound to a stored graph.
type Matcher struct {
	g        *graph.Graph
	lblFreq  map[graph.Label]int
	edgeFreq map[[3]graph.Label]int
}

// New builds the QuickSI index (label and edge frequencies) for g. Edge
// frequencies are keyed on (endpoint labels, edge label), implementing the
// "infrequent adjacent edge labels" priority of §3.1.2.
func New(g *graph.Graph) *Matcher {
	m := &Matcher{
		g:        g,
		lblFreq:  g.LabelFrequencies(),
		edgeFreq: make(map[[3]graph.Label]int),
	}
	g.LabeledEdges(func(u, v int, l graph.Label) {
		m.edgeFreq[edgeKey(g.Label(u), g.Label(v), l)]++
	})
	return m
}

// Name implements match.Matcher.
func (m *Matcher) Name() string { return "QSI" }

// Graph returns the stored graph.
func (m *Matcher) Graph() *graph.Graph { return m.g }

func edgeKey(a, b, e graph.Label) [3]graph.Label {
	if a > b {
		a, b = b, a
	}
	return [3]graph.Label{a, b, e}
}

// seqEntry is one step of the QuickSI search sequence (the "SEQ" of the
// original paper): match vertex u, reached from parent (or -1 for the
// root), then verify the extra (non-tree) edges back into the prefix.
type seqEntry struct {
	u      int32
	parent int32   // -1 for root
	extra  []int32 // already-placed query vertices adjacent to u, besides parent
}

// plan builds the rooted-MST search sequence for query q.
//
// Vertex weight = stored-graph frequency of the vertex's label; edge weight
// = stored-graph frequency of the edge's label pair. The root is the vertex
// with minimal (vertex weight, ID); Prim's algorithm then repeatedly adds
// the frontier edge with minimal (edge weight, new-vertex weight, new-vertex
// ID). Disconnected queries start a new root per component.
func (m *Matcher) plan(q *graph.Graph) []seqEntry {
	n := q.N()
	seq := make([]seqEntry, 0, n)
	placed := make([]bool, n)
	order := make([]int32, 0, n) // placement order (for extra-edge detection)
	vWeight := func(v int32) int { return m.lblFreq[q.Label(int(v))] }
	eWeight := func(a, b int32) int {
		return m.edgeFreq[edgeKey(q.Label(int(a)), q.Label(int(b)), q.EdgeLabel(int(a), int(b)))]
	}
	place := func(u, parent int32) {
		var extra []int32
		for _, w := range q.Neighbors(int(u)) {
			if placed[w] && w != parent {
				extra = append(extra, w)
			}
		}
		seq = append(seq, seqEntry{u: u, parent: parent, extra: extra})
		placed[u] = true
		order = append(order, u)
	}
	for len(order) < n {
		// Pick a root among unplaced vertices: min (label weight, ID).
		root := int32(-1)
		for v := 0; v < n; v++ {
			if placed[v] {
				continue
			}
			if root < 0 || vWeight(int32(v)) < vWeight(root) {
				root = int32(v)
			}
		}
		place(root, -1)
		// Prim: grow the tree of this component.
		for {
			bestU, bestP := int32(-1), int32(-1)
			bestEW, bestVW := 0, 0
			for _, p := range order {
				for _, w := range q.Neighbors(int(p)) {
					if placed[w] {
						continue
					}
					ew, vw := eWeight(p, w), vWeight(w)
					if bestU < 0 || ew < bestEW ||
						(ew == bestEW && (vw < bestVW ||
							(vw == bestVW && w < bestU))) {
						bestU, bestP, bestEW, bestVW = w, p, ew, vw
					}
				}
			}
			if bestU < 0 {
				break // component exhausted
			}
			place(bestU, bestP)
		}
	}
	return seq
}

// Match implements match.Matcher by collecting the stream into a slice.
func (m *Matcher) Match(ctx context.Context, q *graph.Graph, limit int) ([]match.Embedding, error) {
	return match.CollectMatch(ctx, m, q, limit)
}

// MatchStream implements match.StreamMatcher: embeddings are emitted into
// sink as the search discovers them.
func (m *Matcher) MatchStream(ctx context.Context, q *graph.Graph, limit int, sink match.Sink) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	col := match.NewStreamCollector(limit, sink)
	if q.N() == 0 {
		return col.FinishStream(col.Found(match.Embedding{}))
	}
	if q.N() > m.g.N() || q.M() > m.g.M() {
		return nil
	}
	seq := m.plan(q)
	s := &searcher{
		m:      m,
		q:      q,
		seq:    seq,
		emb:    make(match.Embedding, q.N()),
		used:   make([]bool, m.g.N()),
		col:    col,
		budget: match.NewBudget(ctx),
	}
	for i := range s.emb {
		s.emb[i] = -1
	}
	return col.FinishStream(s.step(0))
}

type searcher struct {
	m      *Matcher
	q      *graph.Graph
	seq    []seqEntry
	emb    match.Embedding
	used   []bool
	col    *match.Collector
	budget *match.Budget
}

func (s *searcher) step(i int) error {
	if i == len(s.seq) {
		return s.col.Found(s.emb)
	}
	e := s.seq[i]
	lbl := s.q.Label(int(e.u))
	qdeg := s.q.Degree(int(e.u))
	var candidates []int32
	if e.parent >= 0 {
		candidates = s.m.g.Neighbors(int(s.emb[e.parent]))
	} else {
		candidates = s.m.g.VerticesWithLabel(lbl)
	}
	for _, v := range candidates {
		if err := s.budget.Step(); err != nil {
			return err
		}
		if s.used[v] || s.m.g.Label(int(v)) != lbl || s.m.g.Degree(int(v)) < qdeg {
			continue
		}
		if e.parent >= 0 &&
			!s.m.g.HasEdgeLabeled(int(s.emb[e.parent]), int(v), s.q.EdgeLabel(int(e.u), int(e.parent))) {
			continue
		}
		ok := true
		for _, x := range e.extra {
			if !s.m.g.HasEdgeLabeled(int(s.emb[x]), int(v), s.q.EdgeLabel(int(e.u), int(x))) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		s.emb[e.u] = v
		s.used[v] = true
		if err := s.step(i + 1); err != nil {
			return err
		}
		s.used[v] = false
		s.emb[e.u] = -1
	}
	return nil
}
