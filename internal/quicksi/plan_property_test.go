package quicksi

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/psi-graph/psi/internal/graph"
)

// Property: for random stored graphs and random connected queries, the
// QuickSI plan is always a valid search sequence — every vertex exactly
// once, parents and extra-edge targets placed earlier, every entry's edges
// present in the query, and all query edges covered exactly once.
func TestPlanInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraphQSI(r, 12+r.Intn(10), 3)
		m := New(g)
		q := randomGraphQSI(r, 3+r.Intn(6), 3)
		seq := m.plan(q)
		if len(seq) != q.N() {
			return false
		}
		pos := make(map[int32]int, len(seq))
		edges := 0
		for i, e := range seq {
			if _, dup := pos[e.u]; dup {
				return false
			}
			pos[e.u] = i
			if e.parent >= 0 {
				p, ok := pos[e.parent]
				if !ok || p >= i || !q.HasEdge(int(e.u), int(e.parent)) {
					return false
				}
				edges++
			}
			for _, x := range e.extra {
				p, ok := pos[x]
				if !ok || p >= i || !q.HasEdge(int(e.u), int(x)) {
					return false
				}
				edges++
			}
		}
		return edges == q.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the plan root of each component has the (weakly) rarest label
// among that component's unplaced vertices at selection time; in
// particular, the very first root is a globally rarest-label vertex.
func TestPlanRootIsRarestLabel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraphQSI(r, 20, 4)
		m := New(g)
		q := randomGraphQSI(r, 4+r.Intn(5), 4)
		seq := m.plan(q)
		root := seq[0].u
		rootFreq := m.lblFreq[q.Label(int(root))]
		for v := 0; v < q.N(); v++ {
			if m.lblFreq[q.Label(v)] < rootFreq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func randomGraphQSI(r *rand.Rand, n, labels int) *graph.Graph {
	b := graph.NewBuilder("g")
	for i := 0; i < n; i++ {
		b.AddVertex(graph.Label(r.Intn(labels)))
	}
	for v := 1; v < n; v++ {
		if err := b.AddEdge(r.Intn(v), v); err != nil {
			panic(err)
		}
	}
	for i := 0; i < n/2; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !b.HasEdgePending(u, v) {
			if err := b.AddEdge(u, v); err != nil {
				panic(err)
			}
		}
	}
	return b.MustBuild()
}
