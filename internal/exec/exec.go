// Package exec provides the shared bounded-concurrency execution layer of
// the Ψ-framework: a worker pool sized by the machine's CPU count, with two
// submission modes matched to the two shapes of parallel work in the paper.
//
//   - Group (hard-bounded fan-out): independent work items — candidate-graph
//     verifications in the FTV pipeline — queue onto the pool's workers, so
//     at most MaxWorkers items run at once no matter how many are submitted.
//     This is what stops a query over hundreds of candidates from
//     multiplying goroutines by rewritings.
//
//   - Go (guaranteed-concurrency submit): attempts inside one Ψ race must
//     all run concurrently — the race's whole point is that the first
//     finisher cancels the rest, and an attempt may only terminate *because*
//     it is cancelled. Go hands the task to an idle worker when one is
//     available and otherwise spawns a transient goroutine, so races never
//     serialize behind a saturated pool (which would deadlock a race whose
//     early attempts block until a later attempt wins).
//
// Tasks never deadlock against each other by construction: Group work runs
// only on pool workers and never blocks waiting for other Group work, while
// race attempts are guaranteed their own concurrency. Panics inside tasks
// are isolated — recovered and reported as errors — so one corrupt attempt
// cannot crash a server racing thousands of queries.
package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a bounded set of persistent worker goroutines. The zero value is
// not usable; construct with New or use the process-wide Default pool.
type Pool struct {
	tasks   chan func()
	quit    chan struct{}
	workers int
	closed  sync.Once
	panics  atomic.Uint64
}

// New returns a pool with the given number of workers; maxWorkers <= 0
// selects runtime.NumCPU(). Call Close when the pool is no longer needed
// (the Default pool lives for the whole process and is never closed).
func New(maxWorkers int) *Pool {
	if maxWorkers <= 0 {
		maxWorkers = runtime.NumCPU()
	}
	p := &Pool{
		tasks:   make(chan func()),
		quit:    make(chan struct{}),
		workers: maxWorkers,
	}
	for i := 0; i < maxWorkers; i++ {
		go p.worker()
	}
	return p
}

var (
	defaultPool *Pool
	defaultOnce sync.Once
)

// Default returns the shared process-wide pool, sized by runtime.NumCPU().
// The FTV pipeline and the racer use it when no explicit pool is set.
func Default() *Pool {
	defaultOnce.Do(func() { defaultPool = New(0) })
	return defaultPool
}

// Workers reports the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Panics reports how many task panics the pool has absorbed at the worker
// level (panics in Group tasks are additionally surfaced via Wait).
func (p *Pool) Panics() uint64 { return p.panics.Load() }

// Close stops the pool's workers. Tasks already started run to completion;
// Go falls back to transient goroutines afterwards, so a closed pool
// degrades gracefully instead of deadlocking late submitters.
func (p *Pool) Close() { p.closed.Do(func() { close(p.quit) }) }

func (p *Pool) worker() {
	for {
		select {
		case t := <-p.tasks:
			p.run(t)
		case <-p.quit:
			return
		}
	}
}

// run executes one task with last-resort panic isolation so a panicking
// task can never kill a pool worker.
func (p *Pool) run(t func()) {
	defer func() {
		if r := recover(); r != nil {
			p.panics.Add(1)
		}
	}()
	t()
}

// Go runs task with guaranteed concurrency: on an idle pool worker if one
// is ready to accept it, otherwise on a transient goroutine. It returns
// immediately. Use it for race attempts, which must all make progress
// concurrently; use a Group for fan-out that should be capped at the pool
// size.
func (p *Pool) Go(task func()) {
	select {
	case p.tasks <- task:
	default:
		go p.run(task)
	}
}

// Limiter is a bounded admission gate: a fixed number of in-flight slots
// with non-blocking acquisition. It is the front door a serving layer puts
// in front of the pool — where Group bounds how much admitted work runs at
// once, Limiter bounds how much work is admitted at all, rejecting the
// overflow immediately (a 429, not a queue) so overload degrades into fast
// refusals instead of unbounded goroutines and memory.
type Limiter struct {
	slots chan struct{}
}

// NewLimiter returns a limiter with n in-flight slots; n <= 0 selects
// 4 × runtime.NumCPU(), a serving-friendly multiple of the pool size (most
// of a query's wall-clock is spent waiting on pooled work, so admitting a
// few queries per worker keeps the pool busy without letting the backlog
// grow without bound).
func NewLimiter(n int) *Limiter {
	if n <= 0 {
		n = 4 * runtime.NumCPU()
	}
	return &Limiter{slots: make(chan struct{}, n)}
}

// TryAcquire claims a slot if one is free, without blocking. Every
// successful TryAcquire must be paired with exactly one Release.
func (l *Limiter) TryAcquire() bool {
	select {
	case l.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a slot claimed by TryAcquire. Releasing more than was
// acquired panics: it means an accounting bug that would silently raise the
// admission limit.
func (l *Limiter) Release() {
	select {
	case <-l.slots:
	default:
		panic("exec: Limiter.Release without a matching TryAcquire")
	}
}

// InFlight reports the number of currently claimed slots.
func (l *Limiter) InFlight() int { return len(l.slots) }

// Cap reports the total number of slots.
func (l *Limiter) Cap() int { return cap(l.slots) }

// Group runs a batch of tasks on the pool with hard-bounded concurrency
// (at most the pool's worker count in flight) and joins their outcomes.
// The first task error — including a recovered panic — cancels the group's
// context, which aborts tasks not yet started and lets running tasks exit
// early. Construct with Pool.NewGroup; a Group must not be reused after
// Wait returns.
//
// Group tasks run on pool workers and therefore must not themselves submit
// and wait on Group work from the same pool (race attempts via Go are fine —
// they never queue).
type Group struct {
	p       *Pool
	parent  context.Context
	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	skipped atomic.Bool // a task was dropped or skipped by cancellation

	mu   sync.Mutex
	errs []error
}

// NewGroup returns a Group whose tasks observe a context derived from ctx.
func (p *Pool) NewGroup(ctx context.Context) *Group {
	gctx, cancel := context.WithCancel(ctx)
	return &Group{p: p, parent: ctx, ctx: gctx, cancel: cancel}
}

// Context returns the group's context, cancelled on the first task error.
func (g *Group) Context() context.Context { return g.ctx }

// fail records err (first error wins the joined report's front slot) and
// cancels the group so queued tasks drain without doing their work.
func (g *Group) fail(err error) {
	g.mu.Lock()
	g.errs = append(g.errs, err)
	g.mu.Unlock()
	g.cancel()
}

// Go submits fn to the pool, blocking while all workers are busy. Submission
// is context-aware: if the group is cancelled before a worker frees up, fn
// is dropped (Wait then reports the cancellation). Once running, fn receives
// the group context and its error (or panic) is captured for Wait.
func (g *Group) Go(fn func(ctx context.Context) error) {
	g.wg.Add(1)
	task := func() {
		defer g.wg.Done()
		defer func() {
			if r := recover(); r != nil {
				g.fail(fmt.Errorf("exec: task panic: %v", r))
			}
		}()
		if err := g.ctx.Err(); err != nil {
			g.skipped.Store(true)
			return
		}
		if err := fn(g.ctx); err != nil {
			g.fail(err)
		}
	}
	select {
	case g.p.tasks <- task:
	case <-g.ctx.Done():
		g.skipped.Store(true)
		g.wg.Done()
	case <-g.p.quit:
		// Pool closed under us: run transiently rather than deadlock.
		go task()
	}
}

// Wait blocks until every submitted task has finished or been dropped by
// cancellation, then releases the group's context and returns the joined
// task errors — or the parent context's error when tasks were actually
// dropped by outside cancellation. A batch whose every task completed
// returns nil even if the parent context expired just after the last task
// finished: the computed result is complete, so it is not discarded.
func (g *Group) Wait() error {
	g.wg.Wait()
	g.cancel()
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.errs) == 0 {
		if g.skipped.Load() {
			return g.parent.Err()
		}
		return nil
	}
	return errors.Join(g.errs...)
}
