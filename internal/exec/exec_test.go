package exec

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolDefaultsToNumCPU(t *testing.T) {
	p := New(0)
	defer p.Close()
	if p.Workers() != runtime.NumCPU() {
		t.Errorf("Workers() = %d, want %d", p.Workers(), runtime.NumCPU())
	}
	if Default().Workers() != runtime.NumCPU() {
		t.Errorf("Default().Workers() = %d, want %d", Default().Workers(), runtime.NumCPU())
	}
}

func TestGroupRunsAllTasks(t *testing.T) {
	p := New(4)
	defer p.Close()
	const n = 100
	var ran atomic.Int64
	g := p.NewGroup(context.Background())
	for i := 0; i < n; i++ {
		g.Go(func(ctx context.Context) error {
			ran.Add(1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != n {
		t.Errorf("ran %d tasks, want %d", ran.Load(), n)
	}
}

// TestGroupErrorCancelsRest proves the first task error aborts the drain:
// tasks queued behind the failing one observe the cancelled group context
// and skip their work.
func TestGroupErrorCancelsRest(t *testing.T) {
	p := New(1)
	defer p.Close()
	boom := errors.New("boom")
	var ranAfter atomic.Int64
	g := p.NewGroup(context.Background())
	g.Go(func(ctx context.Context) error { return boom })
	for i := 0; i < 50; i++ {
		g.Go(func(ctx context.Context) error {
			ranAfter.Add(1)
			return nil
		})
	}
	err := g.Wait()
	if !errors.Is(err, boom) {
		t.Fatalf("Wait() = %v, want %v", err, boom)
	}
	// With one worker the failing task runs first; everything behind it
	// must have been dropped or skipped.
	if ranAfter.Load() != 0 {
		t.Errorf("%d tasks ran after the failure, want 0", ranAfter.Load())
	}
}

// TestGroupCancellationMidDrain cancels the parent context while the pool is
// still chewing through a large submission and checks that (a) Wait unblocks
// promptly, (b) the context error is reported, and (c) not every task ran.
func TestGroupCancellationMidDrain(t *testing.T) {
	p := New(2)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g := p.NewGroup(ctx)
	var started atomic.Int64
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			g.Go(func(tctx context.Context) error {
				started.Add(1)
				select {
				case <-release:
				case <-tctx.Done():
				}
				return nil
			})
		}
	}()
	// Wait until the workers are occupied, then cancel mid-drain.
	for started.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(release)
	<-done
	if err := g.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait() = %v, want context.Canceled", err)
	}
	if n := started.Load(); n == 1000 {
		t.Errorf("all 1000 tasks started despite mid-drain cancellation")
	}
}

// TestGroupPanicRecovery proves a panicking task surfaces as an error from
// Wait instead of crashing the process, and the pool stays usable.
func TestGroupPanicRecovery(t *testing.T) {
	p := New(2)
	defer p.Close()
	g := p.NewGroup(context.Background())
	g.Go(func(ctx context.Context) error { panic("kaboom") })
	err := g.Wait()
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("Wait() = %v, want panic error containing %q", err, "kaboom")
	}
	// Pool must still run work after absorbing a panic.
	g2 := p.NewGroup(context.Background())
	ok := false
	g2.Go(func(ctx context.Context) error { ok = true; return nil })
	if err := g2.Wait(); err != nil || !ok {
		t.Fatalf("pool unusable after panic: err=%v ok=%v", err, ok)
	}
}

// TestGoPanicIsolation checks the worker-level backstop: a panic in a raw
// Go task is absorbed and counted rather than killing a worker.
func TestGoPanicIsolation(t *testing.T) {
	p := New(1)
	defer p.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	p.Go(func() { defer wg.Done(); panic("raw") })
	wg.Wait()
	for i := 0; i < 100 && p.Panics() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if p.Panics() == 0 {
		t.Error("worker-level panic was not counted")
	}
	// The lone worker must have survived: a follow-up task still runs.
	ran := make(chan struct{})
	p.Go(func() { close(ran) })
	select {
	case <-ran:
	case <-time.After(2 * time.Second):
		t.Fatal("worker did not survive the panic")
	}
}

// TestMaxWorkers1Determinism: with one worker, Group tasks execute strictly
// in submission order, so shared state needs no synchronization and results
// are reproducible run to run.
func TestMaxWorkers1Determinism(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		p := New(1)
		var order []int
		g := p.NewGroup(context.Background())
		for i := 0; i < 50; i++ {
			i := i
			g.Go(func(ctx context.Context) error {
				order = append(order, i)
				return nil
			})
		}
		if err := g.Wait(); err != nil {
			t.Fatal(err)
		}
		p.Close()
		if len(order) != 50 {
			t.Fatalf("trial %d: ran %d tasks, want 50", trial, len(order))
		}
		for i, v := range order {
			if v != i {
				t.Fatalf("trial %d: order[%d] = %d, want %d (MaxWorkers=1 must preserve submission order)", trial, i, v, i)
			}
		}
	}
}

// TestGoGuaranteedConcurrency saturates every worker with blocking tasks and
// proves a further Go task still runs — the property races rely on.
func TestGoGuaranteedConcurrency(t *testing.T) {
	p := New(2)
	defer p.Close()
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		p.Go(func() { defer wg.Done(); <-release })
	}
	ran := make(chan struct{})
	p.Go(func() { close(ran) })
	select {
	case <-ran:
	case <-time.After(2 * time.Second):
		t.Fatal("Go task starved behind saturated workers")
	}
	close(release)
	wg.Wait()
}

// TestStress exercises many concurrent groups under the race detector.
func TestStress(t *testing.T) {
	p := New(4)
	defer p.Close()
	var total atomic.Int64
	var outer sync.WaitGroup
	for gi := 0; gi < 8; gi++ {
		outer.Add(1)
		go func() {
			defer outer.Done()
			g := p.NewGroup(context.Background())
			for i := 0; i < 200; i++ {
				g.Go(func(ctx context.Context) error {
					total.Add(1)
					return nil
				})
			}
			if err := g.Wait(); err != nil {
				t.Error(err)
			}
		}()
	}
	outer.Wait()
	if total.Load() != 8*200 {
		t.Errorf("ran %d tasks, want %d", total.Load(), 8*200)
	}
}

// TestPoolCloseStopsWorkers verifies Close reclaims the worker goroutines.
func TestPoolCloseStopsWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	p := New(8)
	g := p.NewGroup(context.Background())
	for i := 0; i < 32; i++ {
		g.Go(func(ctx context.Context) error { return nil })
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	p.Close()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+1 {
		t.Errorf("goroutines after Close: %d, want <= %d", n, before+1)
	}
}

// TestLimiterAdmission verifies the bounded-admission contract: exactly Cap
// slots, the Cap+1st TryAcquire rejected, slots reusable after Release.
func TestLimiterAdmission(t *testing.T) {
	l := NewLimiter(3)
	if l.Cap() != 3 {
		t.Fatalf("Cap = %d, want 3", l.Cap())
	}
	for i := 0; i < 3; i++ {
		if !l.TryAcquire() {
			t.Fatalf("TryAcquire %d rejected below the limit", i)
		}
	}
	if l.TryAcquire() {
		t.Fatal("TryAcquire succeeded beyond the limit")
	}
	if l.InFlight() != 3 {
		t.Fatalf("InFlight = %d, want 3", l.InFlight())
	}
	l.Release()
	if !l.TryAcquire() {
		t.Fatal("TryAcquire rejected after Release freed a slot")
	}
}

// TestLimiterDefaultCap verifies n <= 0 selects the serving default.
func TestLimiterDefaultCap(t *testing.T) {
	if got, want := NewLimiter(0).Cap(), 4*runtime.NumCPU(); got != want {
		t.Errorf("default Cap = %d, want %d", got, want)
	}
}

// TestLimiterReleaseUnderflowPanics verifies the accounting guard.
func TestLimiterReleaseUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Release without TryAcquire did not panic")
		}
	}()
	NewLimiter(1).Release()
}

// TestLimiterConcurrent hammers the limiter from many goroutines and checks
// the in-flight count never exceeds the cap.
func TestLimiterConcurrent(t *testing.T) {
	l := NewLimiter(4)
	var over atomic.Bool
	var admitted atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if !l.TryAcquire() {
					continue
				}
				admitted.Add(1)
				if l.InFlight() > l.Cap() {
					over.Store(true)
				}
				l.Release()
			}
		}()
	}
	wg.Wait()
	if over.Load() {
		t.Error("in-flight count exceeded the cap")
	}
	if admitted.Load() == 0 {
		t.Error("no acquisition ever succeeded")
	}
	if l.InFlight() != 0 {
		t.Errorf("slots leaked: InFlight = %d after all releases", l.InFlight())
	}
}
