package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/psi-graph/psi/internal/gen"
	"github.com/psi-graph/psi/internal/metrics"
)

// testConfig is a heavily trimmed configuration so the full experiment
// suite runs in test time.
func testConfig() Config {
	return Config{
		Scale: gen.Tiny, Cap: 50 * time.Millisecond, Seed: 1,
		QueriesPerSize: 3, FTVSizes: []int{4, 6}, NFVSizes: []int{3, 6},
		IsoInstances: 3, EmbedLimit: 100,
	}
}

func TestDefaultConfigs(t *testing.T) {
	for _, s := range []gen.Scale{gen.Tiny, gen.Small, gen.Medium, gen.Paper} {
		cfg := DefaultConfig(s)
		if cfg.Cap <= 0 || cfg.QueriesPerSize <= 0 || len(cfg.FTVSizes) == 0 || len(cfg.NFVSizes) == 0 {
			t.Errorf("scale %v: bad config %+v", s, cfg)
		}
		if cfg.IsoInstances != 6 || cfg.EmbedLimit != 1000 {
			t.Errorf("scale %v: paper constants wrong: %+v", s, cfg)
		}
	}
	if DefaultConfig(gen.Paper).Cap != 600*time.Second {
		t.Error("paper scale must use the 10-minute cap")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table2", "table3", "table4", "table10",
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"ablation1", "ablation2",
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
}

func TestRegistryOrdering(t *testing.T) {
	all := All()
	if all[0].ID != "ablation1" {
		t.Errorf("first experiment = %s, want ablation1", all[0].ID)
	}
	// fig2 must come before fig10 (numeric, not lexicographic)
	pos := map[string]int{}
	for i, exp := range all {
		pos[exp.ID] = i
	}
	if pos["fig2"] > pos["fig10"] {
		t.Error("numeric ordering violated: fig2 after fig10")
	}
	if pos["table2"] > pos["table10"] {
		t.Error("numeric ordering violated: table2 after table10")
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := Lookup("fig99"); ok {
		t.Error("fig99 should not exist")
	}
	var buf bytes.Buffer
	if err := Run(testConfig(), &buf, "fig99"); err == nil {
		t.Error("Run with unknown ID should fail")
	}
}

func TestTableRender(t *testing.T) {
	tbl := Table{
		Title:  "demo",
		Header: []string{"a", "long-column"},
		Note:   "a note",
	}
	tbl.AddRow("x", "y")
	tbl.AddRow("wide-cell", "z")
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "long-column", "wide-cell", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestFormatters(t *testing.T) {
	if fmtDur(0) != "-" {
		t.Error("fmtDur(0)")
	}
	if got := fmtDur(500 * time.Microsecond); got != "500.0µs" {
		t.Errorf("fmtDur(500µs) = %q", got)
	}
	if got := fmtDur(25 * time.Millisecond); got != "25.00ms" {
		t.Errorf("fmtDur(25ms) = %q", got)
	}
	if got := fmtDur(3 * time.Second); got != "3.00s" {
		t.Errorf("fmtDur(3s) = %q", got)
	}
	if fmtF(0) != "0" || fmtF(5000) != "5000" || fmtF(42.13) != "42.1" || fmtF(3.14159) != "3.14" {
		t.Error("fmtF")
	}
	if fmtPct(12.34) != "12.3%" {
		t.Error("fmtPct")
	}
}

func TestEnvCaching(t *testing.T) {
	e := NewEnv(testConfig())
	if e.Synthetic()[0] != e.Synthetic()[0] {
		t.Error("dataset not cached")
	}
	if e.Grapes("ppi", 1) != e.Grapes("ppi", 1) {
		t.Error("index not cached")
	}
	if e.Grapes("ppi", 1) == e.Grapes("ppi", 4) {
		t.Error("different worker counts must be distinct indexes")
	}
	if e.NFVMatcher("yeast", "GQL") != e.NFVMatcher("yeast", "GQL") {
		t.Error("matcher not cached")
	}
	calls := 0
	f := func() metrics.Timing { calls++; return metrics.Timing{} }
	e.cachedTiming("k", f)
	e.cachedTiming("k", f)
	if calls != 1 {
		t.Errorf("cachedTiming ran %d times, want 1", calls)
	}
}

func TestEnvPanicsOnUnknownNames(t *testing.T) {
	e := NewEnv(testConfig())
	assertPanics(t, func() { e.FTVDataset("nope") })
	assertPanics(t, func() { e.NFVGraph("nope") })
	assertPanics(t, func() { e.NFVMatcher("yeast", "NOPE") })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

// TestAllExperimentsRun executes every registered experiment end to end at
// the trimmed test scale and checks each produces table output.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite is slow; run without -short")
	}
	env := NewEnv(testConfig())
	for _, exp := range All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := exp.Run(env, &buf); err != nil {
				t.Fatalf("%s: %v", exp.ID, err)
			}
			if !strings.Contains(buf.String(), "---") {
				t.Errorf("%s produced no table output:\n%s", exp.ID, buf.String())
			}
		})
	}
}

func TestRunSelected(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	var buf bytes.Buffer
	if err := Run(testConfig(), &buf, "table1", "fig5"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "=== table1") || !strings.Contains(out, "=== fig5") {
		t.Errorf("missing experiment banners:\n%s", out)
	}
}
