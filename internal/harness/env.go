// Package harness reproduces the paper's evaluation: every table and figure
// has a registered experiment that regenerates its rows/series on the
// simulated datasets. Absolute numbers differ from the paper (our substrate
// is a scaled simulation, not the authors' testbeds); EXPERIMENTS.md records
// the shape comparison for each artifact.
package harness

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/psi-graph/psi/internal/core"
	"github.com/psi-graph/psi/internal/ftv"
	"github.com/psi-graph/psi/internal/gen"
	"github.com/psi-graph/psi/internal/ggsx"
	"github.com/psi-graph/psi/internal/gql"
	"github.com/psi-graph/psi/internal/grapes"
	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/match"
	"github.com/psi-graph/psi/internal/metrics"
	"github.com/psi-graph/psi/internal/quicksi"
	"github.com/psi-graph/psi/internal/rewrite"
	"github.com/psi-graph/psi/internal/spath"
	"github.com/psi-graph/psi/internal/vf2"
	"github.com/psi-graph/psi/internal/workload"
)

// Config controls an experiment run: dataset scale, the kill cap, workload
// shape, and seeds. Use DefaultConfig for the standard presets.
type Config struct {
	Scale gen.Scale
	// Cap is the per-execution kill limit (the paper's 10 minutes); the
	// easy threshold is Cap/300 (the paper's 2 seconds).
	Cap time.Duration
	// Seed drives every generator and workload; equal seeds reproduce
	// identical experiments.
	Seed int64
	// QueriesPerSize is the number of workload queries per query size.
	QueriesPerSize int
	// FTVSizes and NFVSizes are the query sizes (in edges) for the two
	// method families.
	FTVSizes []int
	NFVSizes []int
	// IsoInstances is the number of random isomorphic instances per query
	// in the §5 variance study (the paper uses 6).
	IsoInstances int
	// EmbedLimit caps enumerated embeddings for NFV matching (the paper
	// uses 1000).
	EmbedLimit int
}

// DefaultConfig returns the preset configuration for a scale.
func DefaultConfig(scale gen.Scale) Config {
	switch scale {
	case gen.Tiny:
		return Config{Scale: scale, Cap: 120 * time.Millisecond, Seed: 1,
			QueriesPerSize: 8, FTVSizes: []int{16, 24}, NFVSizes: []int{8, 16, 24},
			IsoInstances: 6, EmbedLimit: 1000}
	case gen.Small:
		return Config{Scale: scale, Cap: 300 * time.Millisecond, Seed: 1,
			QueriesPerSize: 20, FTVSizes: []int{16, 24, 32}, NFVSizes: []int{10, 16, 24},
			IsoInstances: 6, EmbedLimit: 1000}
	case gen.Medium:
		return Config{Scale: scale, Cap: time.Second, Seed: 1,
			QueriesPerSize: 40, FTVSizes: []int{16, 20, 24, 32}, NFVSizes: []int{10, 16, 24, 32},
			IsoInstances: 6, EmbedLimit: 1000}
	default: // Paper
		return Config{Scale: scale, Cap: 600 * time.Second, Seed: 1,
			QueriesPerSize: 100, FTVSizes: []int{16, 20, 24, 32}, NFVSizes: []int{10, 16, 20, 24, 32},
			IsoInstances: 6, EmbedLimit: 1000}
	}
}

// Budget returns the metrics budget implied by the config.
func (c Config) Budget() metrics.Budget { return metrics.Budget{Cap: c.Cap} }

// Env lazily builds and caches the datasets, indexes, matchers and
// workloads experiments share. Safe for sequential use (experiments run one
// at a time).
type Env struct {
	Cfg Config

	mu sync.Mutex

	synthetic, ppi []*graph.Graph
	grapesSyn      map[int]*grapes.Index // workers -> index
	grapesPPI      map[int]*grapes.Index
	ggsxPPI        *ggsx.Index

	single      map[string]*graph.Graph             // dataset name -> stored graph
	nfvMatchers map[string]map[string]match.Matcher // dataset -> algorithm -> matcher
	nfvFreq     map[string]rewrite.Frequencies
	ftvFreq     map[string]rewrite.Frequencies

	workloads map[string][]workload.Query
	timings   map[string]metrics.Timing
}

// cachedTiming memoizes a measurement under a stable key so that
// experiments sharing a baseline (e.g. Orig verification times) measure it
// once. Keys embed method, dataset, pair index and instance, all of which
// are deterministic for a fixed Config.
func (e *Env) cachedTiming(key string, f func() metrics.Timing) metrics.Timing {
	e.mu.Lock()
	if t, ok := e.timings[key]; ok {
		e.mu.Unlock()
		return t
	}
	e.mu.Unlock()
	t := f()
	e.mu.Lock()
	e.timings[key] = t
	e.mu.Unlock()
	return t
}

// NewEnv creates an experiment environment for cfg.
func NewEnv(cfg Config) *Env {
	return &Env{
		Cfg:         cfg,
		grapesSyn:   make(map[int]*grapes.Index),
		grapesPPI:   make(map[int]*grapes.Index),
		single:      make(map[string]*graph.Graph),
		nfvMatchers: make(map[string]map[string]match.Matcher),
		nfvFreq:     make(map[string]rewrite.Frequencies),
		ftvFreq:     make(map[string]rewrite.Frequencies),
		workloads:   make(map[string][]workload.Query),
		timings:     make(map[string]metrics.Timing),
	}
}

// Synthetic returns the GraphGen-style FTV dataset.
func (e *Env) Synthetic() []*graph.Graph {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.synthetic == nil {
		e.synthetic = gen.Synthetic(gen.SyntheticAt(e.Cfg.Scale), e.Cfg.Seed)
	}
	return e.synthetic
}

// PPI returns the protein-interaction-style FTV dataset.
func (e *Env) PPI() []*graph.Graph {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.ppi == nil {
		e.ppi = gen.PPI(gen.PPIAt(e.Cfg.Scale), e.Cfg.Seed+100)
	}
	return e.ppi
}

// FTVDataset maps a dataset name ("synthetic" or "ppi") to its graphs.
func (e *Env) FTVDataset(name string) []*graph.Graph {
	switch name {
	case "synthetic":
		return e.Synthetic()
	case "ppi":
		return e.PPI()
	}
	panic(fmt.Sprintf("harness: unknown FTV dataset %q", name))
}

// Grapes returns the Grapes index with the given worker count over the
// named FTV dataset, building it on first use.
func (e *Env) Grapes(dataset string, workers int) *grapes.Index {
	ds := e.FTVDataset(dataset)
	e.mu.Lock()
	defer e.mu.Unlock()
	cache := e.grapesSyn
	if dataset == "ppi" {
		cache = e.grapesPPI
	}
	if x, ok := cache[workers]; ok {
		return x
	}
	x := grapes.Build(ds, grapes.Options{Workers: workers})
	cache[workers] = x
	return x
}

// GGSX returns the GGSX index over the PPI dataset (the paper omits GGSX on
// the synthetic dataset because of excessive runtimes; so do we).
func (e *Env) GGSX() *ggsx.Index {
	ds := e.PPI()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.ggsxPPI == nil {
		e.ggsxPPI = ggsx.Build(ds, ggsx.Options{})
	}
	return e.ggsxPPI
}

// NFVGraph returns the named single stored graph ("yeast", "human",
// "wordnet").
func (e *Env) NFVGraph(name string) *graph.Graph {
	e.mu.Lock()
	defer e.mu.Unlock()
	if g, ok := e.single[name]; ok {
		return g
	}
	var g *graph.Graph
	switch name {
	case "yeast":
		g = gen.YeastLike(e.Cfg.Scale, e.Cfg.Seed+200)
	case "human":
		g = gen.HumanLike(e.Cfg.Scale, e.Cfg.Seed+300)
	case "wordnet":
		g = gen.WordnetLike(e.Cfg.Scale, e.Cfg.Seed+400)
	default:
		panic(fmt.Sprintf("harness: unknown NFV dataset %q", name))
	}
	e.single[name] = g
	return g
}

// NFVMatcher returns the named algorithm ("GQL", "SPA", "QSI", "VF2") bound
// to the named NFV dataset, building its index on first use.
func (e *Env) NFVMatcher(dataset, algo string) match.Matcher {
	g := e.NFVGraph(dataset)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.nfvMatchers[dataset] == nil {
		e.nfvMatchers[dataset] = make(map[string]match.Matcher)
	}
	if m, ok := e.nfvMatchers[dataset][algo]; ok {
		return m
	}
	var m match.Matcher
	switch algo {
	case "GQL":
		m = gql.New(g)
	case "SPA":
		m = spath.New(g)
	case "QSI":
		m = quicksi.New(g)
	case "VF2":
		m = vf2.New(g)
	default:
		panic(fmt.Sprintf("harness: unknown algorithm %q", algo))
	}
	e.nfvMatchers[dataset][algo] = m
	return m
}

// NFVFrequencies returns (and caches) the label frequencies of the named
// stored graph, used by ILF-style rewritings.
func (e *Env) NFVFrequencies(dataset string) rewrite.Frequencies {
	g := e.NFVGraph(dataset)
	e.mu.Lock()
	defer e.mu.Unlock()
	if f, ok := e.nfvFreq[dataset]; ok {
		return f
	}
	f := rewrite.FrequenciesOf(g)
	e.nfvFreq[dataset] = f
	return f
}

// FTVFrequencies returns dataset-wide label frequencies for an FTV dataset.
func (e *Env) FTVFrequencies(dataset string) rewrite.Frequencies {
	ds := e.FTVDataset(dataset)
	e.mu.Lock()
	defer e.mu.Unlock()
	if f, ok := e.ftvFreq[dataset]; ok {
		return f
	}
	f := rewrite.FrequenciesOfDataset(ds)
	e.ftvFreq[dataset] = f
	return f
}

// FTVWorkload returns the query workload for an FTV dataset.
func (e *Env) FTVWorkload(dataset string) []workload.Query {
	ds := e.FTVDataset(dataset)
	e.mu.Lock()
	defer e.mu.Unlock()
	key := "ftv:" + dataset
	if qs, ok := e.workloads[key]; ok {
		return qs
	}
	qs := workload.Generate(ds, e.Cfg.FTVSizes, e.Cfg.QueriesPerSize, e.Cfg.Seed+1000)
	e.workloads[key] = qs
	return qs
}

// NFVWorkload returns the query workload for an NFV dataset.
func (e *Env) NFVWorkload(dataset string) []workload.Query {
	g := e.NFVGraph(dataset)
	e.mu.Lock()
	defer e.mu.Unlock()
	key := "nfv:" + dataset
	if qs, ok := e.workloads[key]; ok {
		return qs
	}
	qs := workload.GenerateSingle(g, e.Cfg.NFVSizes, e.Cfg.QueriesPerSize, e.Cfg.Seed+2000)
	e.workloads[key] = qs
	return qs
}

// FTVPair is one (query, candidate graph) verification unit — the paper
// executes "each individual query against a single stored graph at a time".
type FTVPair struct {
	Query   workload.Query
	GraphID int
}

// FTVPairs filters every workload query through the index and returns the
// resulting verification pairs.
func (e *Env) FTVPairs(x ftv.Index, dataset string) []FTVPair {
	var out []FTVPair
	for _, q := range e.FTVWorkload(dataset) {
		for _, id := range x.Filter(q.Graph) {
			out = append(out, FTVPair{Query: q, GraphID: id})
		}
	}
	return out
}

// TimeNFV measures one NFV matching execution under the cap.
func (e *Env) TimeNFV(m match.Matcher, q *graph.Graph) metrics.Timing {
	return e.Cfg.Budget().Run(context.Background(), func(ctx context.Context) error {
		_, err := m.Match(ctx, q, e.Cfg.EmbedLimit)
		return err
	})
}

// TimeFTVVerify measures one pure verification (sub-iso) execution.
func (e *Env) TimeFTVVerify(x ftv.Index, q *graph.Graph, graphID int) metrics.Timing {
	return e.Cfg.Budget().Run(context.Background(), func(ctx context.Context) error {
		_, err := x.Verify(ctx, q, graphID)
		return err
	})
}

// TimeFTVRacerVerify measures one Ψ-framework raced verification.
func (e *Env) TimeFTVRacerVerify(f *core.FTVRacer, q *graph.Graph, graphID int) metrics.Timing {
	return e.Cfg.Budget().Run(context.Background(), func(ctx context.Context) error {
		_, err := f.Verify(ctx, q, graphID)
		return err
	})
}

// TimeRace measures one Ψ-framework NFV race.
func (e *Env) TimeRace(r *core.Racer, attempts []core.Attempt, q *graph.Graph) metrics.Timing {
	return e.Cfg.Budget().Run(context.Background(), func(ctx context.Context) error {
		_, err := r.Race(ctx, q, e.Cfg.EmbedLimit, attempts)
		return err
	})
}
