package harness

import (
	"fmt"
	"io"
	"time"

	"github.com/psi-graph/psi/internal/core"
	"github.com/psi-graph/psi/internal/ftv"
	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/metrics"
	"github.com/psi-graph/psi/internal/rewrite"
)

// ftvIndexes returns the FTV methods evaluated on a dataset, following the
// paper: GGSX is omitted on the synthetic dataset ("because of excessive
// amount of time required for the experiments to complete", §3.4).
func (e *Env) ftvIndexes(dataset string) []ftv.Index {
	xs := []ftv.Index{e.Grapes(dataset, 1), e.Grapes(dataset, 4)}
	if dataset == "ppi" {
		xs = append(xs, e.GGSX())
	}
	return xs
}

// ftvVerifyTimed measures (with caching) the verification of a query
// instance against one dataset graph. The instance key distinguishes
// rewritings/instances of the same base query.
func (e *Env) ftvVerifyTimed(x ftv.Index, dataset string, pairIdx int, instance string, q *graph.Graph, graphID int) metrics.Timing {
	key := fmt.Sprintf("ftv|%s|%s|%d|%s", x.Name(), dataset, pairIdx, instance)
	return e.cachedTiming(key, func() metrics.Timing {
		return e.TimeFTVVerify(x, q, graphID)
	})
}

// rewriteFTV applies a rewriting using dataset-wide label frequencies.
func (e *Env) rewriteFTV(dataset string, q *graph.Graph, k rewrite.Kind) *graph.Graph {
	q2, _ := rewrite.Apply(q, e.FTVFrequencies(dataset), k, 0)
	return q2
}

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Table 1: Dataset characteristics for FTV methods",
		Run: func(e *Env, w io.Writer) error {
			syn := graph.ComputeDatasetStats("synthetic", e.Synthetic())
			ppi := graph.ComputeDatasetStats("ppi", e.PPI())
			t := Table{
				Title:  "Dataset characteristics (FTV)",
				Header: []string{"", "PPI-like", "Synthetic"},
			}
			row := func(name string, f func(graph.DatasetStats) string) {
				t.AddRow(name, f(ppi), f(syn))
			}
			row("#graphs", func(s graph.DatasetStats) string { return fmt.Sprintf("%d", s.NumGraphs) })
			row("#disconnected", func(s graph.DatasetStats) string { return fmt.Sprintf("%d", s.NumDisconnected) })
			row("#labels", func(s graph.DatasetStats) string { return fmt.Sprintf("%d", s.Labels) })
			row("avg #nodes", func(s graph.DatasetStats) string { return fmtF(s.AvgNodes) })
			row("stddev #nodes", func(s graph.DatasetStats) string { return fmtF(s.StdDevNodes) })
			row("avg #edges", func(s graph.DatasetStats) string { return fmtF(s.AvgEdges) })
			row("avg density", func(s graph.DatasetStats) string { return fmt.Sprintf("%.4f", s.AvgDensity) })
			row("avg degree", func(s graph.DatasetStats) string { return fmtF(s.AvgDegree) })
			row("avg #labels/graph", func(s graph.DatasetStats) string { return fmtF(s.AvgLabels) })
			return t.Render(w)
		},
	})

	register(Experiment{
		ID:    "fig1",
		Title: "Figure 1: Stragglers in FTV methods",
		Run:   runFig1,
	})
	register(Experiment{
		ID:    "fig3",
		Title: "Figure 3 + Table 5: (max/min)QLA for FTV methods over isomorphic instances",
		Run:   runFig3,
	})
	register(Experiment{
		ID:    "fig7",
		Title: "Figure 7 + Table 7: speedup*QLA for FTV methods across rewritings",
		Run:   runFig7,
	})
	register(Experiment{
		ID:    "fig10",
		Title: "Figure 10: avg speedup*QLA of Ψ-framework versions on FTV methods",
		Run:   runFig10,
	})
	register(Experiment{
		ID:    "fig11",
		Title: "Figure 11: avg speedup*WLA of Ψ-framework versions on FTV methods",
		Run:   runFig11,
	})
	register(Experiment{
		ID:    "fig12",
		Title: "Figure 12: Grapes/4 vs Ψ(Grapes/1 + 4 rewritings) on PPI, by query size",
		Run:   runFig12,
	})
}

func runFig1(e *Env, w io.Writer) error {
	pct := Table{
		Title:  "(c) Percentages of easy, 2''-600'', and hard queries",
		Header: []string{"dataset", "method", "easy", "2''-600''", "hard", "pairs"},
	}
	for _, dataset := range []string{"synthetic", "ppi"} {
		t := Table{
			Title:  fmt.Sprintf("(%s) WLA-avg exec time per class, %s dataset", map[string]string{"synthetic": "a", "ppi": "b"}[dataset], dataset),
			Header: []string{"method", "easy", "2''-600''", "completed"},
			Note:   "per-(query,graph) pure sub-iso verification time; killed runs excluded from 'completed'",
		}
		for _, x := range e.ftvIndexes(dataset) {
			wl := metrics.Workload{Budget: e.Cfg.Budget()}
			for i, pair := range e.FTVPairs(x, dataset) {
				tm := e.ftvVerifyTimed(x, dataset, i, "Orig", pair.Query.Graph, pair.GraphID)
				wl.Add(tm)
			}
			t.AddRow(x.Name(), fmtDur(wl.AvgEasy()), fmtDur(wl.AvgMid()), fmtDur(wl.AvgCompleted()))
			pct.AddRow(dataset, x.Name(),
				fmtPct(wl.Counts.Pct(metrics.Easy)),
				fmtPct(wl.Counts.Pct(metrics.Mid)),
				fmtPct(wl.Counts.Pct(metrics.Hard)),
				fmt.Sprintf("%d", wl.Counts.Total()))
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return pct.Render(w)
}

// isoInstanceTimes measures the verification times of the random isomorphic
// instances of a pair's query (the §5 study).
func (e *Env) isoInstanceTimes(x ftv.Index, dataset string, pairIdx int, pair FTVPair) []metrics.Timing {
	out := make([]metrics.Timing, e.Cfg.IsoInstances)
	for j := 0; j < e.Cfg.IsoInstances; j++ {
		perm := rewrite.Compute(pair.Query.Graph, nil, rewrite.Random, e.Cfg.Seed+int64(1000*pairIdx+j))
		inst := pair.Query.Graph.MustPermute(perm)
		out[j] = e.ftvVerifyTimed(x, dataset, pairIdx, fmt.Sprintf("iso%d", j), inst, pair.GraphID)
	}
	return out
}

func runFig3(e *Env, w io.Writer) error {
	t := Table{
		Title:  "(max/min)QLA of verification times across isomorphic instances",
		Header: []string{"dataset", "method", "avg", "stddev", "min", "max", "median", "not-helped"},
		Note:   "killed instances counted at the cap, so avg/max are lower bounds (as in the paper); 'not-helped' = pairs hard on every instance, excluded",
	}
	for _, dataset := range []string{"synthetic", "ppi"} {
		for _, x := range e.ftvIndexes(dataset) {
			var ratios []float64
			notHelped, total := 0, 0
			for i, pair := range e.FTVPairs(x, dataset) {
				times := e.isoInstanceTimes(x, dataset, i, pair)
				total++
				secs := make([]float64, len(times))
				allKilled := true
				for j, tm := range times {
					secs[j] = tm.Seconds()
					if !tm.Killed {
						allKilled = false
					}
				}
				if allKilled {
					notHelped++
					continue
				}
				ratios = append(ratios, metrics.MaxMin(secs))
			}
			s := metrics.Summarize(ratios)
			nh := 0.0
			if total > 0 {
				nh = 100 * float64(notHelped) / float64(total)
			}
			t.AddRow(dataset, x.Name(), fmtF(s.Mean), fmtF(s.StdDev), fmtF(s.Min), fmtF(s.Max), fmtF(s.Median), fmtPct(nh))
		}
	}
	return t.Render(w)
}

// rewritingTimes measures the verification time of each structured
// rewriting (plus Orig) for a pair. Returned in the order Orig, ILF, IND,
// DND, ILF+IND, ILF+DND.
func (e *Env) ftvRewritingTimes(x ftv.Index, dataset string, pairIdx int, pair FTVPair) map[rewrite.Kind]metrics.Timing {
	out := make(map[rewrite.Kind]metrics.Timing, 6)
	kinds := append([]rewrite.Kind{rewrite.Orig}, rewrite.Structured...)
	for _, k := range kinds {
		inst := e.rewriteFTV(dataset, pair.Query.Graph, k)
		out[k] = e.ftvVerifyTimed(x, dataset, pairIdx, k.String(), inst, pair.GraphID)
	}
	return out
}

func runFig7(e *Env, w io.Writer) error {
	t := Table{
		Title:  "speedup*QLA of best-of-rewritings over the original query (FTV)",
		Header: []string{"dataset", "method", "avg", "stddev", "min", "max", "median"},
		Note:   "speedup* = t(Orig) / min over {ILF,IND,DND,ILF+IND,ILF+DND}; killed runs counted at the cap (lower bounds); pairs hard everywhere excluded",
	}
	for _, dataset := range []string{"synthetic", "ppi"} {
		for _, x := range e.ftvIndexes(dataset) {
			var speedups []float64
			for i, pair := range e.FTVPairs(x, dataset) {
				times := e.ftvRewritingTimes(x, dataset, i, pair)
				orig := times[rewrite.Orig]
				best := orig
				allKilled := orig.Killed
				for _, k := range rewrite.Structured {
					tm := times[k]
					if !tm.Killed {
						allKilled = false
					}
					if tm.Elapsed < best.Elapsed {
						best = tm
					}
				}
				if allKilled {
					continue
				}
				speedups = append(speedups, metrics.Speedup(orig.Seconds(), best.Seconds()))
			}
			s := metrics.Summarize(speedups)
			t.AddRow(dataset, x.Name(), fmtF(s.Mean), fmtF(s.StdDev), fmtF(s.Min), fmtF(s.Max), fmtF(s.Median))
		}
	}
	return t.Render(w)
}

// psiFTVVariants are the Ψ-framework configurations of §8.1.
var psiFTVVariants = []struct {
	name  string
	kinds []rewrite.Kind
}{
	{"Ψ(ILF/ILF+IND)", []rewrite.Kind{rewrite.ILF, rewrite.ILFIND}},
	{"Ψ(ILF/ILF+DND)", []rewrite.Kind{rewrite.ILF, rewrite.ILFDND}},
	{"Ψ(ILF/IND/DND)", []rewrite.Kind{rewrite.ILF, rewrite.IND, rewrite.DND}},
	{"Ψ(ILF/IND/DND/ILF+IND)", []rewrite.Kind{rewrite.ILF, rewrite.IND, rewrite.DND, rewrite.ILFIND}},
	{"Ψ(all_rewritings)", rewrite.Structured},
}

// psiFTVVariantsWLA adds the Ψ(Or/all_rewritings) variant shown only in the
// WLA figure.
var psiFTVVariantsWLA = append(psiFTVVariants, struct {
	name  string
	kinds []rewrite.Kind
}{"Ψ(Or/all_rewritings)", append([]rewrite.Kind{rewrite.Orig}, rewrite.Structured...)})

// psiFTVTimed measures a raced verification with caching.
func (e *Env) psiFTVTimed(x ftv.Index, dataset, variant string, pairIdx int, racer *core.FTVRacer, pair FTVPair) metrics.Timing {
	key := fmt.Sprintf("psiftv|%s|%s|%s|%d", x.Name(), dataset, variant, pairIdx)
	return e.cachedTiming(key, func() metrics.Timing {
		return e.TimeFTVRacerVerify(racer, pair.Query.Graph, pair.GraphID)
	})
}

func runFig10(e *Env, w io.Writer) error {
	t := Table{
		Title:  "avg speedup*QLA of Ψ versions over the original query (FTV)",
		Header: []string{"dataset", "method", "variant", "threads", "speedup*QLA"},
		Note:   "speedup* = t(Orig)/t(Ψ) per (query,graph) pair, averaged; killed runs at the cap",
	}
	for _, dataset := range []string{"synthetic", "ppi"} {
		for _, x := range e.ftvIndexes(dataset) {
			pairs := e.FTVPairs(x, dataset)
			for _, v := range psiFTVVariants {
				racer := core.NewFTVRacer(x, v.kinds)
				var ratios []float64
				for i, pair := range pairs {
					o := e.ftvVerifyTimed(x, dataset, i, "Orig", pair.Query.Graph, pair.GraphID)
					p := e.psiFTVTimed(x, dataset, v.name, i, racer, pair)
					if p.Seconds() > 0 {
						ratios = append(ratios, o.Seconds()/p.Seconds())
					}
				}
				t.AddRow(dataset, x.Name(), v.name, fmt.Sprintf("%d", len(v.kinds)), fmtF(metrics.Mean(ratios)))
			}
		}
	}
	return t.Render(w)
}

func runFig11(e *Env, w io.Writer) error {
	t := Table{
		Title:  "avg speedup*WLA of Ψ versions over the original query (FTV)",
		Header: []string{"dataset", "method", "variant", "threads", "speedup*WLA"},
		Note:   "WLA = avg(t Orig) / avg(t Ψ) over all (query,graph) pairs",
	}
	for _, dataset := range []string{"synthetic", "ppi"} {
		for _, x := range e.ftvIndexes(dataset) {
			pairs := e.FTVPairs(x, dataset)
			for _, v := range psiFTVVariantsWLA {
				racer := core.NewFTVRacer(x, v.kinds)
				var orig, psi []float64
				for i, pair := range pairs {
					o := e.ftvVerifyTimed(x, dataset, i, "Orig", pair.Query.Graph, pair.GraphID)
					p := e.psiFTVTimed(x, dataset, v.name, i, racer, pair)
					orig = append(orig, o.Seconds())
					psi = append(psi, p.Seconds())
				}
				t.AddRow(dataset, x.Name(), v.name, fmt.Sprintf("%d", len(v.kinds)), fmtF(metrics.WLARatio(orig, psi)))
			}
		}
	}
	return t.Render(w)
}

func runFig12(e *Env, w io.Writer) error {
	t := Table{
		Title:  "WLA-avg exec time on PPI by query size: Grapes/4 vs Ψ(Grapes/1 × ILF/IND/DND/ILF+IND)",
		Header: []string{"query size", "Grapes/4", "Ψ(Grapes/1)", "pairs"},
		Note:   "equal thread budget (4); killed runs counted at the cap",
	}
	g4 := e.Grapes("ppi", 4)
	g1 := e.Grapes("ppi", 1)
	kinds := []rewrite.Kind{rewrite.ILF, rewrite.IND, rewrite.DND, rewrite.ILFIND}
	racer := core.NewFTVRacer(g1, kinds)
	bySize := make(map[int][2][]float64)
	pairs4 := e.FTVPairs(g4, "ppi")
	pairs1 := e.FTVPairs(g1, "ppi")
	for i, pair := range pairs4 {
		tm := e.ftvVerifyTimed(g4, "ppi", i, "Orig", pair.Query.Graph, pair.GraphID)
		cur := bySize[pair.Query.WantEdges]
		cur[0] = append(cur[0], tm.Seconds())
		bySize[pair.Query.WantEdges] = cur
	}
	for i, pair := range pairs1 {
		tm := e.psiFTVTimed(g1, "ppi", "fig12", i, racer, pair)
		cur := bySize[pair.Query.WantEdges]
		cur[1] = append(cur[1], tm.Seconds())
		bySize[pair.Query.WantEdges] = cur
	}
	for _, size := range e.Cfg.FTVSizes {
		cur := bySize[size]
		t.AddRow(fmt.Sprintf("%de", size),
			fmtDur(time.Duration(metrics.Mean(cur[0])*float64(time.Second))),
			fmtDur(time.Duration(metrics.Mean(cur[1])*float64(time.Second))),
			fmt.Sprintf("%d", len(cur[0])))
	}
	return t.Render(w)
}
