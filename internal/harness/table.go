package harness

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table renders aligned text tables, the harness's stand-in for the paper's
// figures and tables.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Note is printed under the table (e.g. measurement conventions).
	Note string
}

// AddRow appends one row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// fmtDur renders a duration compactly with unit-appropriate precision.
func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "-"
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// fmtF renders a float with adaptive precision (large values lose
// decimals, like the paper's tables).
func fmtF(x float64) string {
	switch {
	case x == 0:
		return "0"
	case x >= 1000:
		return fmt.Sprintf("%.0f", x)
	case x >= 10:
		return fmt.Sprintf("%.1f", x)
	default:
		return fmt.Sprintf("%.2f", x)
	}
}

// fmtPct renders a percentage.
func fmtPct(x float64) string { return fmt.Sprintf("%.1f%%", x) }
