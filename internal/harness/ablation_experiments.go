package harness

// Ablations beyond the paper's artifacts (DESIGN.md §7): quantifying the
// Ψ-framework's racing overhead, and pitting always-racing against the §9
// future-work idea of predicting the winning variant per query.

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/psi-graph/psi/internal/core"
	"github.com/psi-graph/psi/internal/match"
	"github.com/psi-graph/psi/internal/predict"
	"github.com/psi-graph/psi/internal/rewrite"
	"github.com/psi-graph/psi/internal/vf2"
)

func init() {
	register(Experiment{
		ID:    "ablation1",
		Title: "Ablation: racing overhead vs thread count (k identical attempts)",
		Run:   runAblationOverhead,
	})
	register(Experiment{
		ID:    "ablation2",
		Title: "Ablation: adaptive variant prediction (§9) vs always racing",
		Run:   runAblationPredictor,
	})
}

// runAblationOverhead races k copies of the same VF2 attempt on the same
// easy query; any time beyond the k=1 row is pure instantiation +
// synchronization overhead (§8: "the instantiation and synchronization of
// many threads come with a non-trivial overhead").
func runAblationOverhead(e *Env, w io.Writer) error {
	g := e.NFVGraph("yeast")
	racer := core.NewRacer(g)
	q := e.NFVWorkload("yeast")[0].Graph
	const reps = 200
	t := Table{
		Title:  "median wall time of a race with k identical VF2 attempts (easy query)",
		Header: []string{"k", "median", "overhead vs k=1"},
		Note:   fmt.Sprintf("%d repetitions per row; overhead explains sub-1 speedups on µs-scale workloads", reps),
	}
	var base time.Duration
	for _, k := range []int{1, 2, 4, 8} {
		attempts := make([]core.Attempt, k)
		for i := range attempts {
			attempts[i] = core.Attempt{Matcher: vf2.New(g), Rewriting: rewrite.Orig}
		}
		times := make([]time.Duration, reps)
		for i := range times {
			start := time.Now()
			if _, err := racer.Race(context.Background(), q, 1, attempts); err != nil {
				return err
			}
			times[i] = time.Since(start)
		}
		med := medianDuration(times)
		if k == 1 {
			base = med
		}
		t.AddRow(fmt.Sprintf("%d", k), fmtDur(med), fmtDur(med-base))
	}
	return t.Render(w)
}

// runAblationPredictor compares three policies on the yeast workload:
// always one algorithm, always racing the full portfolio, and the adaptive
// predictor (race during warm-up, then run only the predicted attempt with
// a race fallback).
func runAblationPredictor(e *Env, w io.Writer) error {
	racer := &core.Racer{Frequencies: e.NFVFrequencies("yeast")}
	matchers := []match.Matcher{e.NFVMatcher("yeast", "GQL"), e.NFVMatcher("yeast", "SPA")}
	attempts := core.Portfolio(matchers, []rewrite.Kind{rewrite.Orig, rewrite.DND})
	adaptive := predict.NewAdaptiveMatcher("Ψ-adaptive", racer, attempts)
	adaptive.SoloBudget = e.Cfg.Cap / 4

	queries := e.NFVWorkload("yeast")
	budget := e.Cfg.Budget()
	policies := []struct {
		name string
		run  func(ctx context.Context, q int) error
	}{
		{"GQL alone", func(ctx context.Context, i int) error {
			_, err := matchers[0].Match(ctx, queries[i].Graph, e.Cfg.EmbedLimit)
			return err
		}},
		{"Ψ race (4 attempts)", func(ctx context.Context, i int) error {
			_, err := racer.Race(ctx, queries[i].Graph, e.Cfg.EmbedLimit, attempts)
			return err
		}},
		{"Ψ-adaptive (predict+fallback)", func(ctx context.Context, i int) error {
			_, err := adaptive.Match(ctx, queries[i].Graph, e.Cfg.EmbedLimit)
			return err
		}},
	}
	t := Table{
		Title:  "policy comparison on the yeast workload (matching, 1000-embedding cap)",
		Header: []string{"policy", "total", "killed", "avg/query"},
		Note:   "adaptive = race first 8 queries to train a k-NN model, then run only the predicted attempt, re-racing when it overruns its budget",
	}
	for _, p := range policies {
		var total time.Duration
		killed := 0
		for i := range queries {
			tm := budget.Run(context.Background(), func(ctx context.Context) error { return p.run(ctx, i) })
			if tm.Killed {
				killed++
			}
			total += tm.Elapsed
		}
		t.AddRow(p.name, fmtDur(total), fmt.Sprintf("%d", killed),
			fmtDur(total/time.Duration(len(queries))))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	seen, solo, fell := adaptive.Stats()
	_, err := fmt.Fprintf(w, "adaptive stats: %d queries, %d solo predictions, %d fallback races, %d model samples\n\n",
		seen, solo, fell, adaptive.Model.Samples())
	return err
}

func medianDuration(ts []time.Duration) time.Duration {
	sorted := append([]time.Duration(nil), ts...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/2]
}
