package harness

import (
	"fmt"
	"io"

	"github.com/psi-graph/psi/internal/core"
	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/match"
	"github.com/psi-graph/psi/internal/metrics"
	"github.com/psi-graph/psi/internal/rewrite"
)

// nfvDatasets lists the NFV datasets with the algorithms the paper runs on
// each: QuickSI only on yeast ("QuickSI always had many more cases ...
// where query processing exceeded the cap", §3.4).
var nfvDatasets = []struct {
	name  string
	algos []string
}{
	{"yeast", []string{"GQL", "SPA", "QSI"}},
	{"human", []string{"GQL", "SPA"}},
	{"wordnet", []string{"GQL", "SPA"}},
}

// nfvTimed measures (with caching) one NFV matching execution of a query
// instance.
func (e *Env) nfvTimed(dataset, algo string, queryIdx int, instance string, q *graph.Graph) metrics.Timing {
	key := fmt.Sprintf("nfv|%s|%s|%d|%s", dataset, algo, queryIdx, instance)
	return e.cachedTiming(key, func() metrics.Timing {
		return e.TimeNFV(e.NFVMatcher(dataset, algo), q)
	})
}

// rewriteNFV applies a rewriting using the stored graph's label frequencies.
func (e *Env) rewriteNFV(dataset string, q *graph.Graph, k rewrite.Kind) *graph.Graph {
	q2, _ := rewrite.Apply(q, e.NFVFrequencies(dataset), k, 0)
	return q2
}

func init() {
	register(Experiment{
		ID:    "table2",
		Title: "Table 2: Dataset characteristics for NFV methods",
		Run: func(e *Env, w io.Writer) error {
			t := Table{
				Title:  "Dataset characteristics (NFV)",
				Header: []string{"", "yeast-like", "human-like", "wordnet-like"},
			}
			stats := make([]graph.Stats, 3)
			for i, name := range []string{"yeast", "human", "wordnet"} {
				stats[i] = graph.ComputeStats(e.NFVGraph(name))
			}
			row := func(name string, f func(graph.Stats) string) {
				t.AddRow(name, f(stats[0]), f(stats[1]), f(stats[2]))
			}
			row("#nodes", func(s graph.Stats) string { return fmt.Sprintf("%d", s.Nodes) })
			row("#edges", func(s graph.Stats) string { return fmt.Sprintf("%d", s.Edges) })
			row("avg degree", func(s graph.Stats) string { return fmtF(s.AvgDegree) })
			row("stddev degree", func(s graph.Stats) string { return fmtF(s.StdDevDegree) })
			row("density", func(s graph.Stats) string { return fmt.Sprintf("%.6f", s.Density) })
			row("#labels", func(s graph.Stats) string { return fmt.Sprintf("%d", s.Labels) })
			row("avg freq labels", func(s graph.Stats) string { return fmtF(s.AvgLabelFreq) })
			row("stddev freq labels", func(s graph.Stats) string { return fmtF(s.StdDevLblFreq) })
			return t.Render(w)
		},
	})

	register(Experiment{
		ID:    "fig2",
		Title: "Figure 2: Stragglers in NFV methods",
		Run:   runFig2,
	})
	register(Experiment{
		ID:    "table3",
		Title: "Table 3: NFV breakdown by query size (yeast)",
		Run:   func(e *Env, w io.Writer) error { return runNFVBreakdown(e, w, "yeast") },
	})
	register(Experiment{
		ID:    "table4",
		Title: "Table 4: NFV breakdown by query size (human)",
		Run:   func(e *Env, w io.Writer) error { return runNFVBreakdown(e, w, "human") },
	})
	register(Experiment{
		ID:    "fig4",
		Title: "Figure 4 + Table 6: (max/min)QLA for NFV methods over isomorphic instances",
		Run:   runFig4,
	})
	register(Experiment{
		ID:    "fig5",
		Title: "Figure 5: isomorphic queries generated with different rewritings",
		Run:   runFig5,
	})
	register(Experiment{
		ID:    "fig6",
		Title: "Figure 6: individual query rewritings for FTV (PPI) and NFV (yeast) methods",
		Run:   runFig6,
	})
	register(Experiment{
		ID:    "fig8",
		Title: "Figure 8 + Table 8: speedup*QLA for NFV methods across rewritings",
		Run:   runFig8,
	})
	register(Experiment{
		ID:    "fig9",
		Title: "Figure 9 + Table 9: speedup*QLA utilizing different algorithms (NFV)",
		Run:   runFig9,
	})
	register(Experiment{
		ID:    "fig13",
		Title: "Figure 13: avg speedup*QLA of Ψ versions (rewriting racing) on NFV methods",
		Run:   runFig13,
	})
	register(Experiment{
		ID:    "fig14",
		Title: "Figure 14: avg speedup*QLA racing multiple algorithms on NFV methods",
		Run:   func(e *Env, w io.Writer) error { return runFig1415(e, w, false) },
	})
	register(Experiment{
		ID:    "fig15",
		Title: "Figure 15: avg speedup*WLA racing multiple algorithms on NFV methods",
		Run:   func(e *Env, w io.Writer) error { return runFig1415(e, w, true) },
	})
	register(Experiment{
		ID:    "table10",
		Title: "Table 10: percentage of killed queries, baselines vs Ψ-framework",
		Run:   runTable10,
	})
}

func runFig2(e *Env, w io.Writer) error {
	pct := Table{
		Title:  "(d) Percentages of easy, 2''-600'', and hard queries",
		Header: []string{"dataset", "method", "easy", "2''-600''", "hard", "queries"},
	}
	sub := map[string]string{"yeast": "a", "human": "b", "wordnet": "c"}
	for _, ds := range nfvDatasets {
		t := Table{
			Title:  fmt.Sprintf("(%s) WLA-avg exec time per class, %s dataset", sub[ds.name], ds.name),
			Header: []string{"method", "easy", "2''-600''", "completed"},
			Note:   "matching problem, embeddings capped at 1000; killed runs excluded from 'completed'",
		}
		for _, algo := range ds.algos {
			wl := metrics.Workload{Budget: e.Cfg.Budget()}
			for i, q := range e.NFVWorkload(ds.name) {
				wl.Add(e.nfvTimed(ds.name, algo, i, "Orig", q.Graph))
			}
			t.AddRow(algo, fmtDur(wl.AvgEasy()), fmtDur(wl.AvgMid()), fmtDur(wl.AvgCompleted()))
			pct.AddRow(ds.name, algo,
				fmtPct(wl.Counts.Pct(metrics.Easy)),
				fmtPct(wl.Counts.Pct(metrics.Mid)),
				fmtPct(wl.Counts.Pct(metrics.Hard)),
				fmt.Sprintf("%d", wl.Counts.Total()))
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return pct.Render(w)
}

// runNFVBreakdown reproduces Tables 3 and 4: per query size, average
// execution time and population of each class per algorithm.
func runNFVBreakdown(e *Env, w io.Writer, dataset string) error {
	var algos []string
	for _, ds := range nfvDatasets {
		if ds.name == dataset {
			algos = ds.algos
		}
	}
	queries := e.NFVWorkload(dataset)
	smallest := e.Cfg.NFVSizes[0]
	largest := e.Cfg.NFVSizes[len(e.Cfg.NFVSizes)-1]
	for _, size := range []int{smallest, largest} {
		t := Table{
			Title:  fmt.Sprintf("%d-edge queries, %s dataset", size, dataset),
			Header: []string{"", "AET easy", "% easy", "AET 2''-600''", "% 2''-600''", "% hard"},
			Note:   "AET: avg exec time per class",
		}
		for _, algo := range algos {
			wl := metrics.Workload{Budget: e.Cfg.Budget()}
			for i, q := range queries {
				if q.WantEdges != size {
					continue
				}
				wl.Add(e.nfvTimed(dataset, algo, i, "Orig", q.Graph))
			}
			t.AddRow(algo,
				fmtDur(wl.AvgEasy()), fmtPct(wl.Counts.Pct(metrics.Easy)),
				fmtDur(wl.AvgMid()), fmtPct(wl.Counts.Pct(metrics.Mid)),
				fmtPct(wl.Counts.Pct(metrics.Hard)))
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}

func runFig4(e *Env, w io.Writer) error {
	t := Table{
		Title:  "(max/min)QLA of matching times across isomorphic instances (NFV)",
		Header: []string{"dataset", "method", "avg", "stddev", "min", "max", "median", "not-helped"},
		Note:   "killed instances counted at the cap (lower bounds); 'not-helped' = queries hard on every instance, excluded",
	}
	for _, ds := range nfvDatasets {
		for _, algo := range ds.algos {
			var ratios []float64
			notHelped, total := 0, 0
			for i, q := range e.NFVWorkload(ds.name) {
				total++
				secs := make([]float64, e.Cfg.IsoInstances)
				allKilled := true
				for j := 0; j < e.Cfg.IsoInstances; j++ {
					perm := rewrite.Compute(q.Graph, nil, rewrite.Random, e.Cfg.Seed+int64(1000*i+j))
					inst := q.Graph.MustPermute(perm)
					tm := e.nfvTimed(ds.name, algo, i, fmt.Sprintf("iso%d", j), inst)
					secs[j] = tm.Seconds()
					if !tm.Killed {
						allKilled = false
					}
				}
				if allKilled {
					notHelped++
					continue
				}
				ratios = append(ratios, metrics.MaxMin(secs))
			}
			s := metrics.Summarize(ratios)
			nh := 0.0
			if total > 0 {
				nh = 100 * float64(notHelped) / float64(total)
			}
			t.AddRow(ds.name, algo, fmtF(s.Mean), fmtF(s.StdDev), fmtF(s.Min), fmtF(s.Max), fmtF(s.Median), fmtPct(nh))
		}
	}
	return t.Render(w)
}

// runFig5 prints the paper's worked rewriting example: the 7-vertex query
// with labels A A A B B C C and stored-graph frequencies A=20, B=15, C=10.
func runFig5(e *Env, w io.Writer) error {
	const A, B, C = 0, 1, 2
	q := graph.MustNew("fig5",
		[]graph.Label{A, A, A, B, B, C, C},
		[][2]int{{0, 1}, {0, 3}, {1, 2}, {1, 4}, {2, 5}, {3, 6}, {4, 5}})
	freq := rewrite.Frequencies{A: 20, B: 15, C: 10}
	names := map[graph.Label]string{A: "A", B: "B", C: "C"}
	t := Table{
		Title:  "Isomorphic queries generated with different rewritings (A:20 B:15 C:10)",
		Header: []string{"rewriting", "labels in node-ID order", "permutation (old->new)"},
	}
	for _, k := range []rewrite.Kind{rewrite.Orig, rewrite.ILF, rewrite.IND, rewrite.ILFIND, rewrite.ILFDND} {
		h, perm := rewrite.Apply(q, freq, k, 0)
		labels := ""
		for v := 0; v < h.N(); v++ {
			if v > 0 {
				labels += " "
			}
			labels += names[h.Label(v)]
		}
		t.AddRow(k.String(), labels, fmt.Sprint([]int(perm)))
	}
	return t.Render(w)
}

// runFig6 reproduces the per-rewriting comparison: WLA average execution
// times and hard-query percentages for each individual rewriting, on the
// PPI dataset (FTV methods) and the yeast dataset (NFV methods).
func runFig6(e *Env, w io.Writer) error {
	kinds := append([]rewrite.Kind{rewrite.Orig}, rewrite.Structured...)
	// (a)+(b): PPI, FTV methods.
	avgT := Table{
		Title:  "(a) PPI dataset, WLA-avg exec time per rewriting",
		Header: append([]string{"method"}, kindNames(kinds)...),
		Note:   "killed runs counted at the cap",
	}
	hardT := Table{
		Title:  "(b) PPI dataset, percentage of hard queries per rewriting",
		Header: append([]string{"method"}, kindNames(kinds)...),
	}
	for _, x := range e.ftvIndexes("ppi") {
		avgRow := []string{x.Name()}
		hardRow := []string{x.Name()}
		pairs := e.FTVPairs(x, "ppi")
		for _, k := range kinds {
			var secs []float64
			hard := 0
			for i, pair := range pairs {
				inst := e.rewriteFTV("ppi", pair.Query.Graph, k)
				tm := e.ftvVerifyTimed(x, "ppi", i, k.String(), inst, pair.GraphID)
				secs = append(secs, tm.Seconds())
				if tm.Killed {
					hard++
				}
			}
			avgRow = append(avgRow, fmtF(metrics.Mean(secs)*1000)+"ms")
			pctHard := 0.0
			if len(secs) > 0 {
				pctHard = 100 * float64(hard) / float64(len(secs))
			}
			hardRow = append(hardRow, fmtPct(pctHard))
		}
		avgT.AddRow(avgRow...)
		hardT.AddRow(hardRow...)
	}
	if err := avgT.Render(w); err != nil {
		return err
	}
	if err := hardT.Render(w); err != nil {
		return err
	}
	// (c)+(d): yeast, NFV methods.
	avgN := Table{
		Title:  "(c) yeast dataset, WLA-avg exec time per rewriting",
		Header: append([]string{"method"}, kindNames(kinds)...),
		Note:   "killed runs counted at the cap",
	}
	hardN := Table{
		Title:  "(d) yeast dataset, percentage of hard queries per rewriting",
		Header: append([]string{"method"}, kindNames(kinds)...),
	}
	for _, algo := range []string{"GQL", "SPA", "QSI"} {
		avgRow := []string{algo}
		hardRow := []string{algo}
		queries := e.NFVWorkload("yeast")
		for _, k := range kinds {
			var secs []float64
			hard := 0
			for i, q := range queries {
				inst := e.rewriteNFV("yeast", q.Graph, k)
				tm := e.nfvTimed("yeast", algo, i, k.String(), inst)
				secs = append(secs, tm.Seconds())
				if tm.Killed {
					hard++
				}
			}
			avgRow = append(avgRow, fmtF(metrics.Mean(secs)*1000)+"ms")
			pctHard := 0.0
			if len(secs) > 0 {
				pctHard = 100 * float64(hard) / float64(len(secs))
			}
			hardRow = append(hardRow, fmtPct(pctHard))
		}
		avgN.AddRow(avgRow...)
		hardN.AddRow(hardRow...)
	}
	if err := avgN.Render(w); err != nil {
		return err
	}
	return hardN.Render(w)
}

func kindNames(kinds []rewrite.Kind) []string {
	out := make([]string, len(kinds))
	for i, k := range kinds {
		out[i] = k.String()
	}
	return out
}

func runFig8(e *Env, w io.Writer) error {
	t := Table{
		Title:  "speedup*QLA of best-of-rewritings over the original query (NFV)",
		Header: []string{"dataset", "method", "avg", "stddev", "min", "max", "median"},
		Note:   "speedup* = t(Orig) / min over {ILF,IND,DND,ILF+IND,ILF+DND}; killed runs at the cap; queries hard everywhere excluded",
	}
	for _, ds := range nfvDatasets {
		for _, algo := range ds.algos {
			var speedups []float64
			for i, q := range e.NFVWorkload(ds.name) {
				orig := e.nfvTimed(ds.name, algo, i, "Orig", q.Graph)
				best := orig
				allKilled := orig.Killed
				for _, k := range rewrite.Structured {
					inst := e.rewriteNFV(ds.name, q.Graph, k)
					tm := e.nfvTimed(ds.name, algo, i, k.String(), inst)
					if !tm.Killed {
						allKilled = false
					}
					if tm.Elapsed < best.Elapsed {
						best = tm
					}
				}
				if allKilled {
					continue
				}
				speedups = append(speedups, metrics.Speedup(orig.Seconds(), best.Seconds()))
			}
			s := metrics.Summarize(speedups)
			t.AddRow(ds.name, algo, fmtF(s.Mean), fmtF(s.StdDev), fmtF(s.Min), fmtF(s.Max), fmtF(s.Median))
		}
	}
	return t.Render(w)
}

// fig9Sets are the algorithm portfolios of §7: yeast with two and three
// algorithms, human and wordnet with two.
var fig9Sets = []struct {
	label   string
	dataset string
	algos   []string
}{
	{"yeast2alg", "yeast", []string{"GQL", "SPA"}},
	{"yeast3alg", "yeast", []string{"GQL", "SPA", "QSI"}},
	{"human", "human", []string{"GQL", "SPA"}},
	{"wordnet", "wordnet", []string{"GQL", "SPA"}},
}

func runFig9(e *Env, w io.Writer) error {
	t := Table{
		Title:  "speedup*QLA when utilizing different algorithms (original query)",
		Header: []string{"set", "method", "avg", "stddev", "min", "max", "median"},
		Note:   "speedup* of algorithm M = t_M / min over the portfolio's algorithms, per query",
	}
	for _, set := range fig9Sets {
		times := make(map[string][]metrics.Timing, len(set.algos))
		queries := e.NFVWorkload(set.dataset)
		for _, algo := range set.algos {
			ts := make([]metrics.Timing, len(queries))
			for i, q := range queries {
				ts[i] = e.nfvTimed(set.dataset, algo, i, "Orig", q.Graph)
			}
			times[algo] = ts
		}
		for _, algo := range set.algos {
			var speedups []float64
			for i := range queries {
				best := times[algo][i].Seconds()
				for _, other := range set.algos {
					if s := times[other][i].Seconds(); s < best {
						best = s
					}
				}
				speedups = append(speedups, metrics.Speedup(times[algo][i].Seconds(), best))
			}
			s := metrics.Summarize(speedups)
			t.AddRow(set.label, algo, fmtF(s.Mean), fmtF(s.StdDev), fmtF(s.Min), fmtF(s.Max), fmtF(s.Median))
		}
	}
	return t.Render(w)
}

// psiNFVVariants are the rewriting-racing configurations of §8.2.
var psiNFVVariants = []struct {
	name  string
	kinds []rewrite.Kind
}{
	{"Ψ(Or/ILF/ILF+IND)", []rewrite.Kind{rewrite.Orig, rewrite.ILF, rewrite.ILFIND}},
	{"Ψ(Or/ILF/IND/DND)", []rewrite.Kind{rewrite.Orig, rewrite.ILF, rewrite.IND, rewrite.DND}},
	{"Ψ(Or/ILF/IND/DND/ILF+IND)", []rewrite.Kind{rewrite.Orig, rewrite.ILF, rewrite.IND, rewrite.DND, rewrite.ILFIND}},
	{"Ψ(all)", append([]rewrite.Kind{rewrite.Orig}, rewrite.Structured...)},
}

// psiNFVTimed measures (with caching) a raced NFV execution.
func (e *Env) psiNFVTimed(dataset, variant string, queryIdx int, racer *core.Racer, attempts []core.Attempt, q *graph.Graph) metrics.Timing {
	key := fmt.Sprintf("psinfv|%s|%s|%d", dataset, variant, queryIdx)
	return e.cachedTiming(key, func() metrics.Timing {
		return e.TimeRace(racer, attempts, q)
	})
}

func runFig13(e *Env, w io.Writer) error {
	t := Table{
		Title:  "avg speedup*QLA of Ψ versions (rewriting racing) on NFV methods",
		Header: []string{"dataset", "method", "variant", "threads", "speedup*QLA"},
		Note:   "speedup* = t(Orig)/t(Ψ) per query, averaged; killed runs at the cap",
	}
	for _, ds := range nfvDatasets {
		racer := &core.Racer{Frequencies: e.NFVFrequencies(ds.name)}
		for _, algo := range ds.algos {
			m := e.NFVMatcher(ds.name, algo)
			for _, v := range psiNFVVariants {
				attempts := core.Rewritings(m, v.kinds)
				var ratios []float64
				for i, q := range e.NFVWorkload(ds.name) {
					orig := e.nfvTimed(ds.name, algo, i, "Orig", q.Graph)
					psi := e.psiNFVTimed(ds.name, algo+v.name, i, racer, attempts, q.Graph)
					if psi.Seconds() > 0 {
						ratios = append(ratios, orig.Seconds()/psi.Seconds())
					}
				}
				t.AddRow(ds.name, algo, v.name, fmt.Sprintf("%d", len(v.kinds)), fmtF(metrics.Mean(ratios)))
			}
		}
	}
	return t.Render(w)
}

// fig14Variants are the algorithm+rewriting racing configurations of §8.2:
// GQL and sPath race each other under a common rewriting (or pair of them).
var fig14Variants = []struct {
	name  string
	kinds []rewrite.Kind
}{
	{"Ψ([GQL/SPA]-[Or])", []rewrite.Kind{rewrite.Orig}},
	{"Ψ([GQL/SPA]-[ILF])", []rewrite.Kind{rewrite.ILF}},
	{"Ψ([GQL/SPA]-[IND])", []rewrite.Kind{rewrite.IND}},
	{"Ψ([GQL/SPA]-[DND])", []rewrite.Kind{rewrite.DND}},
	{"Ψ([GQL/SPA]-[Or/DND])", []rewrite.Kind{rewrite.Orig, rewrite.DND}},
}

func runFig1415(e *Env, w io.Writer, wla bool) error {
	metric := "speedup*QLA"
	if wla {
		metric = "speedup*WLA"
	}
	for _, baseline := range []string{"GQL", "SPA"} {
		t := Table{
			Title:  fmt.Sprintf("%s for %s when racing GQL and SPA under shared rewritings", metric, baseline),
			Header: []string{"dataset", "variant", "threads", metric},
			Note:   "baseline is the vanilla algorithm on the original query; killed runs at the cap",
		}
		for _, ds := range nfvDatasets {
			racer := &core.Racer{Frequencies: e.NFVFrequencies(ds.name)}
			matchers := []match.Matcher{e.NFVMatcher(ds.name, "GQL"), e.NFVMatcher(ds.name, "SPA")}
			for _, v := range fig14Variants {
				attempts := core.Portfolio(matchers, v.kinds)
				var base, psi []float64
				var ratios []float64
				for i, q := range e.NFVWorkload(ds.name) {
					b := e.nfvTimed(ds.name, baseline, i, "Orig", q.Graph)
					p := e.psiNFVTimed(ds.name, v.name, i, racer, attempts, q.Graph)
					base = append(base, b.Seconds())
					psi = append(psi, p.Seconds())
					if p.Seconds() > 0 {
						ratios = append(ratios, b.Seconds()/p.Seconds())
					}
				}
				val := metrics.Mean(ratios)
				if wla {
					val = metrics.WLARatio(base, psi)
				}
				t.AddRow(ds.name, v.name, fmt.Sprintf("%d", len(attempts)), fmtF(val))
			}
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}

func runTable10(e *Env, w io.Writer) error {
	t := Table{
		Title:  "Percentage of killed queries: baselines vs Ψ-framework",
		Header: []string{"workload", "baseline", "baseline killed", "Ψ version", "Ψ killed"},
	}
	// FTV row: Grapes/4 on PPI vs Ψ(Grapes/4: Or + all rewritings).
	{
		x := e.Grapes("ppi", 4)
		pairs := e.FTVPairs(x, "ppi")
		kinds := append([]rewrite.Kind{rewrite.Orig}, rewrite.Structured...)
		racer := core.NewFTVRacer(x, kinds)
		baseKilled, psiKilled := 0, 0
		for i, pair := range pairs {
			if e.ftvVerifyTimed(x, "ppi", i, "Orig", pair.Query.Graph, pair.GraphID).Killed {
				baseKilled++
			}
			if e.psiFTVTimed(x, "ppi", "table10", i, racer, pair).Killed {
				psiKilled++
			}
		}
		n := len(pairs)
		t.AddRow("PPI", "Grapes/4", killedPct(baseKilled, n), "Ψ(Grapes/4: Or/all)", killedPct(psiKilled, n))
	}
	// NFV rows: GQL and SPA vs Ψ([GQL/SPA]-[Or/DND]).
	for _, ds := range nfvDatasets {
		racer := &core.Racer{Frequencies: e.NFVFrequencies(ds.name)}
		matchers := []match.Matcher{e.NFVMatcher(ds.name, "GQL"), e.NFVMatcher(ds.name, "SPA")}
		attempts := core.Portfolio(matchers, []rewrite.Kind{rewrite.Orig, rewrite.DND})
		queries := e.NFVWorkload(ds.name)
		psiKilled := 0
		killed := map[string]int{"GQL": 0, "SPA": 0}
		for i, q := range queries {
			for _, algo := range []string{"GQL", "SPA"} {
				if e.nfvTimed(ds.name, algo, i, "Orig", q.Graph).Killed {
					killed[algo]++
				}
			}
			if e.psiNFVTimed(ds.name, "Ψ([GQL/SPA]-[Or/DND])", i, racer, attempts, q.Graph).Killed {
				psiKilled++
			}
		}
		n := len(queries)
		for _, algo := range []string{"GQL", "SPA"} {
			t.AddRow(ds.name, algo, killedPct(killed[algo], n), "Ψ([GQL/SPA]-[Or/DND])", killedPct(psiKilled, n))
		}
	}
	return t.Render(w)
}

func killedPct(k, n int) string {
	if n == 0 {
		return "-"
	}
	return fmtPct(100 * float64(k) / float64(n))
}
