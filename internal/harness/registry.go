package harness

import (
	"fmt"
	"io"
	"sort"
)

// Experiment regenerates one of the paper's tables or figures.
type Experiment struct {
	// ID is the experiment identifier used by cmd/psibench and
	// bench_test.go (e.g. "fig10", "table3").
	ID string
	// Title describes the paper artifact being reproduced.
	Title string
	// Run executes the experiment against the environment and writes its
	// tables to w.
	Run func(e *Env, w io.Writer) error
}

var registry = map[string]Experiment{}

// register adds an experiment at package init time.
func register(exp Experiment) {
	if _, dup := registry[exp.ID]; dup {
		panic("harness: duplicate experiment " + exp.ID)
	}
	registry[exp.ID] = exp
}

// All returns every registered experiment sorted by ID (figures first, then
// tables, each numerically).
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, exp := range registry {
		out = append(out, exp)
	}
	sort.Slice(out, func(i, j int) bool { return idLess(out[i].ID, out[j].ID) })
	return out
}

// idLess orders "fig1" < "fig2" < ... < "table1" < "table10" numerically.
func idLess(a, b string) bool {
	pa, na := splitID(a)
	pb, nb := splitID(b)
	if pa != pb {
		return pa < pb
	}
	return na < nb
}

func splitID(id string) (prefix string, n int) {
	i := 0
	for i < len(id) && (id[i] < '0' || id[i] > '9') {
		i++
	}
	prefix = id[:i]
	fmt.Sscanf(id[i:], "%d", &n)
	return prefix, n
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	exp, ok := registry[id]
	return exp, ok
}

// Run executes the experiments with the given IDs (all when ids is empty)
// against a fresh environment for cfg, writing output to w.
func Run(cfg Config, w io.Writer, ids ...string) error {
	env := NewEnv(cfg)
	var exps []Experiment
	if len(ids) == 0 {
		exps = All()
	} else {
		for _, id := range ids {
			exp, ok := Lookup(id)
			if !ok {
				return fmt.Errorf("harness: unknown experiment %q", id)
			}
			exps = append(exps, exp)
		}
	}
	for _, exp := range exps {
		fmt.Fprintf(w, "=== %s: %s (scale=%s cap=%v) ===\n", exp.ID, exp.Title, cfg.Scale, cfg.Cap)
		if err := exp.Run(env, w); err != nil {
			return fmt.Errorf("harness: experiment %s: %w", exp.ID, err)
		}
	}
	return nil
}
