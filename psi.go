package psi

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"github.com/psi-graph/psi/internal/core"
	"github.com/psi-graph/psi/internal/exec"
	"github.com/psi-graph/psi/internal/ftv"
	"github.com/psi-graph/psi/internal/gen"
	"github.com/psi-graph/psi/internal/ggsx"
	"github.com/psi-graph/psi/internal/gql"
	"github.com/psi-graph/psi/internal/grapes"
	"github.com/psi-graph/psi/internal/graph"
	indexpkg "github.com/psi-graph/psi/internal/index"
	"github.com/psi-graph/psi/internal/match"
	"github.com/psi-graph/psi/internal/metrics"
	"github.com/psi-graph/psi/internal/quicksi"
	"github.com/psi-graph/psi/internal/rewrite"
	"github.com/psi-graph/psi/internal/spath"
	"github.com/psi-graph/psi/internal/vf2"
	"github.com/psi-graph/psi/internal/workload"
)

// Core graph types, re-exported from the internal substrate.
type (
	// Graph is an immutable vertex-labeled undirected graph.
	Graph = graph.Graph
	// Label is a vertex label.
	Label = graph.Label
	// Builder incrementally constructs a Graph.
	Builder = graph.Builder
	// Permutation maps old vertex IDs to new ones (perm[old] = new).
	Permutation = graph.Permutation
	// Stats summarizes a graph (Table 2-style statistics).
	Stats = graph.Stats
	// DatasetStats summarizes a multi-graph dataset (Table 1-style).
	DatasetStats = graph.DatasetStats
)

// Matching types.
type (
	// Embedding maps query vertices to stored-graph vertices.
	Embedding = match.Embedding
	// Matcher is the common contract of all matching algorithms.
	Matcher = match.Matcher
	// Attempt pairs an algorithm with a rewriting for racing.
	Attempt = core.Attempt
	// Racer runs Ψ-framework races.
	Racer = core.Racer
	// RaceResult is the outcome of a race, including winner provenance.
	RaceResult = core.Result
	// FTVIndex is the narrow filter-then-verify contract the racers and
	// the result cache consume; FilterIndex extends it.
	FTVIndex = ftv.Index
	// FilterIndex is the unified filtering-index contract implemented by
	// every index built here (path-based FTV, Grapes, GGSX): the FTVIndex
	// core plus streaming candidate emission (FilterStream) and build
	// statistics (Stats). The Engine races FilterIndexes against each
	// other exactly as it races matching algorithms.
	FilterIndex = indexpkg.Index
	// IndexStats describes a built filtering index (build time, feature
	// and node counts, extraction parallelism).
	IndexStats = indexpkg.Stats
	// IndexAttempt reports one filtering index's run inside an Engine
	// index race: winner/cancelled flags, emissions and timing.
	IndexAttempt = core.IndexAttempt
	// IndexRacer races alternative filtering indexes per query.
	IndexRacer = core.IndexRacer
	// FTVRacer races query rewritings inside FTV verification.
	FTVRacer = core.FTVRacer
	// EngineCounters is a snapshot of an Engine's operational counters
	// (queries, kills, attempt fan-out); see Engine.Counters.
	EngineCounters = metrics.CountersSnapshot
)

// Rewriting identifies one of the paper's query rewritings.
type Rewriting = rewrite.Kind

// The rewritings of §6 of the paper, plus Orig (identity) and Random.
const (
	Orig   = rewrite.Orig
	ILF    = rewrite.ILF
	IND    = rewrite.IND
	DND    = rewrite.DND
	ILFIND = rewrite.ILFIND
	ILFDND = rewrite.ILFDND
	Random = rewrite.Random
)

// StructuredRewritings lists ILF, IND, DND, ILF+IND and ILF+DND in the
// paper's order.
func StructuredRewritings() []Rewriting {
	return append([]Rewriting(nil), rewrite.Structured...)
}

// Algorithm names a subgraph isomorphism algorithm.
type Algorithm string

// The algorithms implemented by this module.
const (
	VF2     Algorithm = "VF2"
	QuickSI Algorithm = "QSI"
	GraphQL Algorithm = "GQL"
	SPath   Algorithm = "SPA"
)

// NewGraph builds a graph from labels and an edge list.
func NewGraph(name string, labels []Label, edges [][2]int) (*Graph, error) {
	return graph.New(name, labels, edges)
}

// MustNewGraph is NewGraph but panics on error; for literals.
func MustNewGraph(name string, labels []Label, edges [][2]int) *Graph {
	return graph.MustNew(name, labels, edges)
}

// NewBuilder starts building a graph with the given name.
func NewBuilder(name string) *Builder { return graph.NewBuilder(name) }

// NewMatcher constructs the named algorithm over stored graph g. The
// algorithm's preprocessing ("indexing phase") happens here; the returned
// matcher is safe for concurrent queries.
func NewMatcher(algo Algorithm, g *Graph) (Matcher, error) {
	switch algo {
	case VF2:
		return vf2.New(g), nil
	case QuickSI:
		return quicksi.New(g), nil
	case GraphQL:
		return gql.New(g), nil
	case SPath:
		return spath.New(g), nil
	}
	return nil, fmt.Errorf("psi: unknown algorithm %q", algo)
}

// MustNewMatcher is NewMatcher but panics on an unknown algorithm.
func MustNewMatcher(algo Algorithm, g *Graph) Matcher {
	m, err := NewMatcher(algo, g)
	if err != nil {
		panic(err)
	}
	return m
}

// NewRacer returns a Ψ-framework racer with label frequencies drawn from
// the stored graph (needed by the ILF rewritings).
func NewRacer(g *Graph) *Racer { return core.NewRacer(g) }

// NewPortfolioMatcher builds a Matcher that races the cross product of the
// given algorithms and rewritings over stored graph g — the general form of
// the paper's Ψ variants. It is the simplest way to consume the framework:
//
//	m := psi.NewPortfolioMatcher(g,
//		[]psi.Algorithm{psi.GraphQL, psi.SPath},
//		[]psi.Rewriting{psi.Orig, psi.DND})
func NewPortfolioMatcher(g *Graph, algos []Algorithm, kinds []Rewriting) Matcher {
	ms := make([]Matcher, len(algos))
	for i, a := range algos {
		ms[i] = MustNewMatcher(a, g)
	}
	name := "Ψ("
	for i, a := range algos {
		if i > 0 {
			name += "/"
		}
		name += string(a)
	}
	name += ")"
	return core.NewRacedMatcher(name, core.NewRacer(g), core.Portfolio(ms, kinds))
}

// Race runs one Ψ-framework race directly.
func Race(ctx context.Context, g *Graph, q *Graph, limit int, attempts []Attempt) (RaceResult, error) {
	return core.NewRacer(g).Race(ctx, q, limit, attempts)
}

// Portfolio builds the attempt cross product for Race.
func Portfolio(matchers []Matcher, kinds []Rewriting) []Attempt {
	return core.Portfolio(matchers, kinds)
}

// ApplyRewriting permutes q's node IDs per the rewriting, using label
// frequencies from the stored graph g, and returns the isomorphic query
// together with the permutation (needed to map embeddings back via
// MapEmbeddingBack).
func ApplyRewriting(q, g *Graph, k Rewriting) (*Graph, Permutation) {
	return rewrite.Apply(q, rewrite.FrequenciesOf(g), k, 0)
}

// ApplyRandomRewriting permutes q's node IDs uniformly at random under the
// given seed — the instrument of the paper's §5 variance study.
func ApplyRandomRewriting(q *Graph, seed int64) (*Graph, Permutation) {
	return rewrite.Apply(q, nil, rewrite.Random, seed)
}

// MapEmbeddingBack converts an embedding of a rewritten query into the
// original query's vertex numbering.
func MapEmbeddingBack(emb Embedding, perm Permutation) Embedding {
	return rewrite.MapBack(emb, perm)
}

// VerifyEmbedding checks that emb is a valid non-induced subgraph
// isomorphism of q into g.
func VerifyEmbedding(q, g *Graph, emb Embedding) error {
	return match.VerifyEmbedding(q, g, emb)
}

// CanonicalQueryKey serializes q after a deterministic structure-driven
// vertex ordering — the cache key the iGQ-style result cache and the
// serving layer's shared result cache agree on. It is not a complete
// canonical form (graph canonization is GI-hard): isomorphic queries may
// receive different keys — a missed cache hit, never a wrong one — while
// equal keys always denote identical serialized structures, so exact hits
// are sound.
func CanonicalQueryKey(q *Graph) string { return ftv.CanonicalKey(q) }

// NewGrapes builds a Grapes index (path trie with location information)
// over a dataset, with the given verification worker-pool size (the paper's
// Grapes/1 and Grapes/4 are workers=1 and workers=4). The build's feature
// extraction fans out across the shared execution pool with deterministic
// output. The result implements the unified FilterIndex contract — it can
// be raced against other indexes by a dataset Engine — and still satisfies
// the narrower FTVIndex everywhere the racers and cache expect one.
func NewGrapes(dataset []*Graph, workers int) FilterIndex {
	return grapes.Build(dataset, grapes.Options{Workers: workers})
}

// NewGGSX builds a GGSX index (path suffix trie, no locations) over a
// dataset, with pooled deterministic feature extraction. Like NewGrapes it
// returns the unified FilterIndex contract.
func NewGGSX(dataset []*Graph) FilterIndex {
	return ggsx.Build(dataset, ggsx.Options{})
}

// NewPathIndex builds the flat path-based FTV baseline index (hash map from
// packed label sequence to per-graph counts, VF2 verification against whole
// graphs) — the third alternative in the filtering-index portfolio, with
// the same filtering power as GGSX at a different constant factor.
func NewPathIndex(dataset []*Graph) FilterIndex {
	x, err := indexpkg.BuildPath(context.Background(), dataset, indexpkg.Options{})
	if err != nil {
		// Unreachable: the background context never cancels and extraction
		// has no other failure mode.
		panic(err)
	}
	return x
}

// BuildIndex constructs any registered filtering index ("ftv", "grapes",
// "ggsx") with explicit options; the build is cancellable through ctx and
// deterministic for every pool size.
func BuildIndex(ctx context.Context, kind string, dataset []*Graph, workers int) (FilterIndex, error) {
	return indexpkg.Build(ctx, kind, dataset, indexpkg.Options{Workers: workers})
}

// IndexKinds lists the registered filtering-index kinds.
func IndexKinds() []string { return indexpkg.Kinds() }

// NewShardedIndex builds a registered filtering-index kind over a K-way
// round-robin partition of the dataset: every shard gets its own sub-index,
// per-shard candidate streams merge in ascending global-ID order, and
// verification routes back to the owning shard — so answers are
// byte-identical to BuildIndex's monolithic result at any shard count. The
// returned index satisfies the full FilterIndex contract and can be raced
// against any other index (sharded or not) by NewIndexRacer or a dataset
// Engine. shards <= 1 builds the plain monolithic index.
func NewShardedIndex(ctx context.Context, kind string, dataset []*Graph, shards, workers int) (FilterIndex, error) {
	return indexpkg.Build(ctx, kind, dataset, indexpkg.Options{Workers: workers, Shards: shards})
}

// NewIndexRacer races the given filtering indexes per query with the given
// rewritings raced per candidate inside each; see Engine's race policy for
// the serving-shaped form.
func NewIndexRacer(indexes []FilterIndex, kinds []Rewriting) *IndexRacer {
	return core.NewIndexRacer(indexes, kinds)
}

// NewFTVRacer wraps an FTV index so that every candidate-graph verification
// races the given query rewritings (§8.1 of the paper).
func NewFTVRacer(x FTVIndex, kinds []Rewriting) *FTVRacer {
	return core.NewFTVRacer(x, kinds)
}

// CachedFTV is an iGQ-style query-result cache layered over any FTV index
// (reference [19] of the paper); see internal/ftv.Cached.
type CachedFTV = ftv.Cached

// NewCachedFTV wraps an FTV index with an iGQ-style result cache holding up
// to maxEntries remembered queries (0 means 128). Use its Answer method in
// place of FTVAnswer.
func NewCachedFTV(x FTVIndex, maxEntries int) *CachedFTV {
	return ftv.NewCached(x, maxEntries)
}

// NewCachedFTVParallel is NewCachedFTV with the residual verifications (the
// candidates the cache could not resolve) fanned out across the shared
// worker pool. Answers and cache statistics are identical to NewCachedFTV.
func NewCachedFTVParallel(x FTVIndex, maxEntries int) *CachedFTV {
	return ftv.NewCachedParallel(x, maxEntries, nil)
}

// FTVAnswer runs the plain filter-then-verify pipeline sequentially and
// returns the IDs of dataset graphs containing q.
func FTVAnswer(ctx context.Context, x FTVIndex, q *Graph) ([]int, error) {
	return ftv.Answer(ctx, x, q)
}

// FTVAnswerParallel is FTVAnswer with the verification stage fanned out
// across the shared worker pool (sized by the machine's CPU count). The
// returned IDs are identical to FTVAnswer's — ascending graph IDs — only
// the wall-clock time changes.
func FTVAnswerParallel(ctx context.Context, x FTVIndex, q *Graph) ([]int, error) {
	return ftv.ParallelAnswer(ctx, x, q, nil)
}

// FTVAnswerOptions tunes FTVAnswerWithOptions.
type FTVAnswerOptions struct {
	// MaxWorkers caps the number of concurrent candidate verifications.
	// 0 uses the shared default pool (one worker per CPU); 1 degenerates
	// to the sequential pipeline.
	MaxWorkers int
}

// sizedPools caches process-wide pools for explicit MaxWorkers values, so
// per-query calls do not pay pool construction and teardown. The cache is
// bounded with least-recently-used eviction: a server deriving MaxWorkers
// from load cannot accrete unbounded idle workers, and an unseen size
// always gets a cached pool by displacing the size touched longest ago —
// never a throwaway pool built and torn down per call.
var (
	sizedPoolsMu sync.Mutex
	sizedPools   = map[int]*exec.Pool{}
	sizedPoolLRU []int // sizes, least-recently-used first
)

const maxCachedPoolSizes = 16

// sizedPool returns the cached pool for the given worker count, creating it
// (and evicting the least-recently-used size when the cache is full) on
// first sight. Evicted pools are closed; in-flight queries on them degrade
// gracefully to transient goroutines rather than failing.
func sizedPool(workers int) *exec.Pool {
	sizedPoolsMu.Lock()
	defer sizedPoolsMu.Unlock()
	if p, ok := sizedPools[workers]; ok {
		touchSizedPool(workers)
		return p
	}
	if len(sizedPools) >= maxCachedPoolSizes {
		oldest := sizedPoolLRU[0]
		sizedPoolLRU = sizedPoolLRU[1:]
		sizedPools[oldest].Close()
		delete(sizedPools, oldest)
	}
	p := exec.New(workers)
	sizedPools[workers] = p
	sizedPoolLRU = append(sizedPoolLRU, workers)
	return p
}

// touchSizedPool moves workers to the most-recently-used end of the LRU
// order. Caller holds sizedPoolsMu.
func touchSizedPool(workers int) {
	for i, w := range sizedPoolLRU {
		if w == workers {
			sizedPoolLRU = append(append(sizedPoolLRU[:i:i], sizedPoolLRU[i+1:]...), workers)
			return
		}
	}
}

// FTVAnswerWithOptions runs the filter-then-verify pipeline with explicit
// parallelism options.
func FTVAnswerWithOptions(ctx context.Context, x FTVIndex, q *Graph, opts FTVAnswerOptions) ([]int, error) {
	if opts.MaxWorkers == 1 {
		return ftv.Answer(ctx, x, q)
	}
	if opts.MaxWorkers <= 0 {
		return ftv.ParallelAnswer(ctx, x, q, nil)
	}
	return ftv.ParallelAnswer(ctx, x, q, sizedPool(opts.MaxWorkers))
}

// ComputeStats summarizes one graph.
func ComputeStats(g *Graph) Stats { return graph.ComputeStats(g) }

// ComputeDatasetStats summarizes a dataset.
func ComputeDatasetStats(name string, ds []*Graph) DatasetStats {
	return graph.ComputeDatasetStats(name, ds)
}

// ExtractQuery grows a connected query of wantEdges edges from a random
// vertex of g (the paper's §3.4 workload procedure), using the given seed.
func ExtractQuery(g *Graph, wantEdges int, seed int64) *Graph {
	return workload.Extract(rand.New(rand.NewSource(seed)), g, wantEdges)
}

// Scale selects generated dataset sizes; see the gen package presets.
type Scale = gen.Scale

// Generation scales.
const (
	Tiny   = gen.Tiny
	Small  = gen.Small
	Medium = gen.Medium
	Paper  = gen.Paper
)

// GenerateSynthetic produces a GraphGen-style FTV dataset.
func GenerateSynthetic(scale Scale, seed int64) []*Graph {
	return gen.Synthetic(gen.SyntheticAt(scale), seed)
}

// GeneratePPI produces a protein-interaction-style FTV dataset.
func GeneratePPI(scale Scale, seed int64) []*Graph {
	return gen.PPI(gen.PPIAt(scale), seed)
}

// GenerateYeastLike produces a yeast-shaped NFV stored graph.
func GenerateYeastLike(scale Scale, seed int64) *Graph { return gen.YeastLike(scale, seed) }

// GenerateHumanLike produces a human-shaped NFV stored graph.
func GenerateHumanLike(scale Scale, seed int64) *Graph { return gen.HumanLike(scale, seed) }

// GenerateWordnetLike produces a wordnet-shaped NFV stored graph.
func GenerateWordnetLike(scale Scale, seed int64) *Graph { return gen.WordnetLike(scale, seed) }
